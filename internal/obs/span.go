package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Span is one timed operation: a training epoch, a figure regeneration, a
// batch flush, a model reload. Spans carry parent/child IDs (a flat trace
// tree, no context plumbing) and small string attrs. A span is mutated
// only by its owning goroutine until End, which publishes it into the
// tracer's ring; after End it is read-only.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the distributed-trace identity this span belongs to (0 =
	// untraced). Unlike ID and Parent, which are minted per-process, the
	// trace ID crosses process boundaries via the Branchnet-Trace header,
	// so the fleet plane can reassemble one request's span tree across
	// loadgen, gateway, and replica. For a span whose direct cause lives
	// in ANOTHER process (a replica request span caused by a gateway
	// route span), Parent holds the remote sender's span ID as carried by
	// the header — meaningful only within the span's trace, where IDs
	// from different processes are disambiguated by source.
	Trace uint64 `json:"trace,omitempty"`
	// Link is the same-process ID of a span that did work on this span's
	// behalf outside its own lifetime — concretely, the batch-flush span
	// that executed a request span's model inferences. Links restore
	// causality across the batching boundary, where one flush serves many
	// requests and so can be nobody's child.
	Link  uint64            `json:"link,omitempty"`
	Name  string            `json:"name"`
	Start int64             `json:"start_unix_ns"`
	End   int64             `json:"end_unix_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
}

// Tracer records finished spans into a fixed-size lock-free ring buffer:
// End is one atomic increment plus one atomic pointer store, so tracing
// never blocks the traced path, and the last N spans are always
// exportable as JSON. Old spans are overwritten silently — the ring is a
// flight recorder, not a log.
//
// A nil *Tracer (and the nil *Span every method then returns) is a valid
// disabled tracer: Start/StartChild/SetAttr/Finish are no-ops, so
// instrumented code needs no enabled-check beyond carrying the pointer.
type Tracer struct {
	ring   []atomic.Pointer[Span]
	mask   uint64
	pos    atomic.Uint64 // next write slot (total spans ever finished)
	nextID atomic.Uint64
}

// DefaultTracer is the process-wide tracer behind the training and
// experiments instrumentation, sized for a full -all suite run.
var DefaultTracer = NewTracer(1024)

// NewTracer returns a tracer keeping the last n finished spans (n is
// rounded up to a power of two, minimum 16).
func NewTracer(n int) *Tracer {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Tracer{ring: make([]atomic.Pointer[Span], size), mask: uint64(size - 1)}
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:     t.nextID.Add(1),
		Name:   name,
		Start:  time.Now().UnixNano(),
		tracer: t,
	}
}

// StartChild opens a span parented under s, inheriting its trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.tracer.Start(name)
	child.Parent = s.ID
	child.Trace = s.Trace
	return child
}

// SetTrace stamps the span's distributed-trace identity and returns s
// for chaining. Call only before Finish.
func (s *Span) SetTrace(trace uint64) *Span {
	if s == nil {
		return nil
	}
	s.Trace = trace
	return s
}

// SetRemoteParent records the sending process's span ID (from a
// Branchnet-Trace header) as this span's parent. See Span.Trace for why
// a cross-process parent is meaningful only within a trace.
func (s *Span) SetRemoteParent(id uint64) *Span {
	if s == nil {
		return nil
	}
	s.Parent = id
	return s
}

// SetLink records the same-process span that served this span's work
// (the batch-flush link). Call only before Finish.
func (s *Span) SetLink(id uint64) *Span {
	if s == nil {
		return nil
	}
	s.Link = id
	return s
}

// SpanID returns the span's ID (0 for a nil/disabled span), so callers
// can hand it to a peer without a nil check.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// SetAttr attaches a string attribute and returns s for chaining. Call
// only before Finish.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
	return s
}

// SetInt is SetAttr for integer values.
func (s *Span) SetInt(key string, value int64) *Span {
	return s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetFloat is SetAttr for float values.
func (s *Span) SetFloat(key string, value float64) *Span {
	return s.SetAttr(key, strconv.FormatFloat(value, 'g', 6, 64))
}

// Finish stamps the end time and publishes the span into the tracer's
// ring, overwriting the oldest entry once the ring is full.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = time.Now().UnixNano()
	t := s.tracer
	idx := t.pos.Add(1) - 1
	t.ring[idx&t.mask].Store(s)
}

// Spans returns up to max of the most recently finished spans, oldest
// first. The read is best-effort under concurrent writers: a slot being
// overwritten mid-read yields either the old or the new span, never a
// torn one (slots are atomic pointers).
func (t *Tracer) Spans(max int) []*Span {
	if t == nil {
		return nil
	}
	end := t.pos.Load()
	n := uint64(len(t.ring))
	if end < n {
		n = end
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]*Span, 0, n)
	for i := end - n; i < end; i++ {
		if sp := t.ring[i&t.mask].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	// Concurrent wraparound can leave IDs out of order; present a stable
	// oldest-first view.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FilterTrace selects from spans (one process's flight-recorder dump)
// the spans belonging to trace, plus every same-process span a selected
// span Links to — the batch-flush spans that served traced requests but
// carry no trace identity themselves, because one flush serves requests
// from many traces. Input order is preserved; linked spans appear where
// they sat in the dump.
func FilterTrace(spans []*Span, trace uint64) []*Span {
	if trace == 0 {
		return nil
	}
	wanted := make(map[uint64]bool)
	for _, sp := range spans {
		if sp != nil && sp.Trace == trace && sp.Link != 0 {
			wanted[sp.Link] = true
		}
	}
	var out []*Span
	for _, sp := range spans {
		if sp != nil && (sp.Trace == trace || wanted[sp.ID]) {
			out = append(out, sp)
		}
	}
	return out
}

// spansPage is the /debug/spans JSON document.
type spansPage struct {
	Count int     `json:"count"`
	Spans []*Span `json:"spans"`
}

// Handler serves the last spans as JSON (the /debug/spans endpoint). The
// optional ?n= query bounds the count (default: the whole ring).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				max = v
			}
		}
		spans := t.Spans(max)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(spansPage{Count: len(spans), Spans: spans}) //nolint:errcheck // client gone is fine
	})
}
