// Package obscheck is a repo-hygiene gate, not a library: its only test
// walks cmd/ and internal/ and fails if any non-test file logs through raw
// log.Print/Printf/Println instead of the structured slog setup in
// internal/obs. log.Fatal* stays allowed — it is the CLI exit path, and
// slog has no equivalent that also terminates the process.
package obscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// bannedLogCalls are the unstructured log-package entry points every CLI
// and library has been migrated off.
var bannedLogCalls = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func repoRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	// internal/obs/obscheck/obscheck_test.go -> repo root is three up.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestNoRawLogPrintOutsideObs(t *testing.T) {
	root := repoRoot(t)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root detection failed (%s has no go.mod): %v", root, err)
	}

	var violations []string
	for _, top := range []string{"cmd", "internal"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// The obs package itself is the logging layer; tests may
				// exercise log however they like.
				if d.Name() == "obs" && top == "internal" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			violations = append(violations, checkFile(t, path)...)
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", top, err)
		}
	}
	for _, v := range violations {
		t.Errorf("raw log call (use slog via internal/obs, or log.Fatal* for exits): %s", v)
	}
}

// checkFile parses one Go file and returns "file:line: log.X" for each
// banned call through the standard log package.
func checkFile(t *testing.T, path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	// Resolve what identifier the "log" package is imported as (skip files
	// that don't import it at all).
	logName := ""
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "log" {
			logName = "log"
			if imp.Name != nil {
				logName = imp.Name.Name
			}
		}
	}
	if logName == "" || logName == "_" {
		return nil
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != logName || !bannedLogCalls[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(call.Pos())
		rel, _ := filepath.Rel(repoRoot(t), pos.Filename)
		out = append(out, fmt.Sprintf("%s:%d: %s.%s", rel, pos.Line, logName, sel.Sel.Name))
		return true
	})
	return out
}
