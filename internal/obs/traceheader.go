package obs

import (
	"crypto/rand"
	"encoding/binary"
	"time"
)

// TraceHeader is the HTTP header that carries trace context across
// process hops (loadgen -> gateway -> replica). Its value is
// "<trace>-<span>": two fixed-width 16-digit lowercase-or-uppercase hex
// uint64s joined by a dash — the 64-bit trace identity and the sender's
// span ID (0 when the sender keeps no local span, e.g. a sampling load
// generator minting a fresh trace).
//
// The codec is deliberately forgiving in exactly one way: any value that
// is not well-formed parses as "no trace". Tracing is advisory — a
// malformed, truncated, or hostile header must never fail a prediction
// request, so ParseTraceHeader has no error path, allocates nothing, and
// does constant work regardless of input size.
const TraceHeader = "Branchnet-Trace"

// traceHeaderLen is the exact encoded length: 16 hex + '-' + 16 hex.
const traceHeaderLen = 33

// NewTraceID mints a random nonzero 64-bit trace identity. Randomness
// (not a counter) keeps IDs unique across the many processes of a fleet
// without coordination, the same argument as the serve epoch token.
func NewTraceID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; a
			// clock-derived ID keeps tracing alive rather than silent.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

const hexDigits = "0123456789abcdef"

// FormatTraceHeader renders the TraceHeader value for (trace, span).
// A zero trace formats as "" — the no-trace value — so callers can set
// the header unconditionally.
func FormatTraceHeader(trace, span uint64) string {
	if trace == 0 {
		return ""
	}
	var b [traceHeaderLen]byte
	putHex16(b[:16], trace)
	b[16] = '-'
	putHex16(b[17:], span)
	return string(b[:])
}

func putHex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ParseTraceHeader decodes a TraceHeader value. Anything that is not
// exactly 16 hex digits, a dash, and 16 hex digits — truncated values,
// garbage, oversized inputs, a zero trace — returns (0, 0, false): the
// request simply starts untraced. The parse never panics, never
// allocates, and touches at most traceHeaderLen bytes of its input.
func ParseTraceHeader(s string) (trace, span uint64, ok bool) {
	if len(s) != traceHeaderLen || s[16] != '-' {
		return 0, 0, false
	}
	trace, ok = parseHex16(s[:16])
	if !ok || trace == 0 {
		return 0, 0, false
	}
	span, ok = parseHex16(s[17:])
	if !ok {
		return 0, 0, false
	}
	return trace, span, true
}

func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// FormatTraceID renders a bare trace ID the way the fleet endpoints
// accept it (/v1/fleet/trace?id=...): 16 lowercase hex digits.
func FormatTraceID(trace uint64) string {
	var b [16]byte
	putHex16(b[:], trace)
	return string(b[:])
}

// ParseTraceID decodes a bare 16-hex-digit trace ID ("" and malformed
// values return 0, false).
func ParseTraceID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, ok := parseHex16(s)
	if !ok || v == 0 {
		return 0, false
	}
	return v, ok
}
