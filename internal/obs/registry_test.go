package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse hammers one registry from many goroutines —
// registration races, recording races, render races — and then checks the
// totals against the single-threaded oracle. Run under -race this is the
// package's data-race gate.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine resolves the same names: registration must be
			// idempotent and the returned pointers shared.
			c := r.Counter("reqs_total")
			ga := r.Gauge("depth")
			h := r.Histogram("lat_seconds", 0.001, 0.01, 0.1, 1)
			lc := r.LabeledCounter("errs_total", "class")
			lg := r.LabeledGauge("inflight", "replica")
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				ga.Add(-1)
				h.Observe(0.005)
				lc.With("parse").Inc()
				if i%2 == 0 {
					lc.With("not_found").Inc()
				}
				lg.With("r1").Add(1)
				lg.With("r2").Add(1)
				lg.With("r2").Add(-1)
			}
		}()
	}
	// Concurrent readers: snapshots and Prometheus rendering must never
	// tear or race against the writers.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					r.WritePrometheus(discard{})
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const total = goroutines * iters
	if got := r.Counter("reqs_total").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lat_seconds").Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	lc := r.LabeledCounter("errs_total", "class")
	if got := lc.With("parse").Value(); got != total {
		t.Errorf("labeled[parse] = %d, want %d", got, total)
	}
	if got := lc.With("not_found").Value(); got != total/2 {
		t.Errorf("labeled[not_found] = %d, want %d", got, total/2)
	}
	if got := lc.Total(); got != total+total/2 {
		t.Errorf("labeled total = %d, want %d", got, total+total/2)
	}
	lgv := r.LabeledGauge("inflight", "replica").Values()
	if lgv["r1"] != total || lgv["r2"] != 0 {
		t.Errorf("labeled gauge values = %v, want r1=%d r2=0", lgv, total)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering gauge over existing counter name should panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshotAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(-3)
	r.GaugeFunc("gf", func() int64 { return 42 })
	r.Histogram("h", 1, 2).Observe(1.5)
	r.LabeledCounter("l", "k").With("v").Add(9)
	r.LabeledGauge("lg", "k").With("v").Set(-5)

	s := r.Snapshot()
	if s.Counters["c"] != 7 {
		t.Errorf("counter snapshot = %d, want 7", s.Counters["c"])
	}
	if s.Gauges["g"] != -3 || s.Gauges["gf"] != 42 {
		t.Errorf("gauge snapshots = %v, want g=-3 gf=42", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histogram snapshot count = %d, want 1", s.Histograms["h"].Count)
	}
	if s.Labeled["l"]["v"] != 9 {
		t.Errorf("labeled snapshot = %v, want l[v]=9", s.Labeled)
	}
	if s.LabeledGauges["lg"]["v"] != -5 {
		t.Errorf("labeled gauge snapshot = %v, want lg[v]=-5", s.LabeledGauges)
	}
}

func TestWriteMetricsFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("written_total").Add(3)

	if err := WriteMetricsFile("", r); err != nil {
		t.Fatalf("empty path should be a no-op, got %v", err)
	}

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteMetricsFile(path, r); err != nil {
		t.Fatalf("WriteMetricsFile: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["written_total"] != 3 {
		t.Errorf("round-tripped counter = %d, want 3", snap.Counters["written_total"])
	}
}
