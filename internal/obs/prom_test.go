package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// name-sorted output, cumulative histogram buckets with trimmed le=
// bounds, a +Inf overflow series, and one line per observed label value.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("branchnet_requests_total").Add(12)
	r.Gauge("branchnet_queue_depth").Set(3)
	r.GaugeFunc("branchnet_model_set_version", func() int64 { return 2 })
	h := r.Histogram("branchnet_batch_size", 1, 2, 4)
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	h.Observe(100) // overflow
	lc := r.LabeledCounter("branchnet_reload_failures_total", "class")
	lc.With("parse").Add(2)
	lc.With("not_found").Inc()
	lg := r.LabeledGauge("branchnet_replica_inflight", "replica")
	lg.With("r1").Set(4)
	lg.With("r0").Set(-1) // gauges may go negative; counters cannot
	r.Histogram("frac_seconds", 0.0005, 0.25).Observe(0.1)

	var b strings.Builder
	r.WritePrometheus(&b)

	want := strings.Join([]string{
		`branchnet_batch_size_bucket{le="1"} 1`,
		`branchnet_batch_size_bucket{le="2"} 3`,
		`branchnet_batch_size_bucket{le="4"} 3`,
		`branchnet_batch_size_bucket{le="+Inf"} 4`,
		`branchnet_batch_size_sum 105`,
		`branchnet_batch_size_count 4`,
		`branchnet_model_set_version 2`,
		`branchnet_queue_depth 3`,
		`branchnet_reload_failures_total{class="not_found"} 1`,
		`branchnet_reload_failures_total{class="parse"} 2`,
		`branchnet_replica_inflight{replica="r0"} -1`,
		`branchnet_replica_inflight{replica="r1"} 4`,
		`branchnet_requests_total 12`,
		`frac_seconds_bucket{le="0.0005"} 0`,
		`frac_seconds_bucket{le="0.25"} 1`,
		`frac_seconds_bucket{le="+Inf"} 1`,
		`frac_seconds_sum 0.1`,
		`frac_seconds_count 1`,
	}, "\n") + "\n"

	if got := b.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEmptyLabeledFamilyIsAbsent(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("errs_total", "class") // registered, never observed
	r.LabeledGauge("inflight", "replica")   // ditto
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("unobserved labeled family should render nothing, got %q", b.String())
	}
}
