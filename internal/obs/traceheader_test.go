package obs

import (
	"strings"
	"testing"
)

// TestTraceHeaderRoundTrip is the codec's core property: every (trace,
// span) pair with a nonzero trace survives Format -> Parse bit-exactly.
func TestTraceHeaderRoundTrip(t *testing.T) {
	// A deterministic xorshift walk covers high bits, low bits, and
	// boundary-ish values without RNG flakiness.
	v := uint64(0x9e3779b97f4a7c15)
	cases := []struct{ trace, span uint64 }{
		{1, 0},
		{1, 1},
		{^uint64(0), ^uint64(0)},
		{0x00000000ffffffff, 0xffffffff00000000},
		{0xdeadbeefcafef00d, 42},
	}
	for i := 0; i < 64; i++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		cases = append(cases, struct{ trace, span uint64 }{v | 1, v >> 1})
	}
	for _, tc := range cases {
		h := FormatTraceHeader(tc.trace, tc.span)
		if len(h) != traceHeaderLen {
			t.Fatalf("FormatTraceHeader(%#x, %#x) = %q: length %d, want %d",
				tc.trace, tc.span, h, len(h), traceHeaderLen)
		}
		trace, span, ok := ParseTraceHeader(h)
		if !ok || trace != tc.trace || span != tc.span {
			t.Fatalf("round trip (%#x, %#x) -> %q -> (%#x, %#x, %v)",
				tc.trace, tc.span, h, trace, span, ok)
		}
	}
}

func TestTraceHeaderZeroTraceFormatsEmpty(t *testing.T) {
	if h := FormatTraceHeader(0, 12345); h != "" {
		t.Fatalf("FormatTraceHeader(0, span) = %q, want empty", h)
	}
}

func TestTraceHeaderUppercaseAccepted(t *testing.T) {
	trace, span, ok := ParseTraceHeader("DEADBEEFCAFEF00D-000000000000002A")
	if !ok || trace != 0xdeadbeefcafef00d || span != 0x2a {
		t.Fatalf("uppercase parse = (%#x, %#x, %v)", trace, span, ok)
	}
}

// TestTraceHeaderMalformed pins the forgiving-parse contract: every
// malformed shape is "no trace", never an error or panic.
func TestTraceHeaderMalformed(t *testing.T) {
	bad := []string{
		"",
		"-",
		"deadbeef",                                  // truncated
		"deadbeefcafef00d",                          // trace only
		"deadbeefcafef00d-",                         // dash, no span
		"deadbeefcafef00d-0000000000000g2a",         // non-hex span
		"deadbeefcafeg00d-000000000000002a",         // non-hex trace
		"0000000000000000-000000000000002a",         // zero trace
		"deadbeefcafef00d_000000000000002a",         // wrong separator
		"deadbeefcafef00d-000000000000002a ",        // trailing byte
		" deadbeefcafef00d-000000000000002a",        // leading byte
		"deadbeefcafef00d-000000000000002adeadbeef", // oversized
		"+eadbeefcafef00d-000000000000002a",         // sign prefix (strconv would take it)
		"0xadbeefcafef00d-000000000000002a",         // 0x prefix
		strings.Repeat("a", 1<<16),                  // huge input, constant work
		"日本語の分散トレース原簿ヘッダ値テスト入力", // multibyte
	}
	for _, s := range bad {
		if trace, span, ok := ParseTraceHeader(s); ok || trace != 0 || span != 0 {
			t.Errorf("ParseTraceHeader(%.40q) = (%#x, %#x, %v), want (0, 0, false)", s, trace, span, ok)
		}
	}
}

// TestParseTraceHeaderNoAlloc pins the hot-path contract: parsing —
// well-formed or garbage — allocates nothing. The parse runs on every
// request at the gateway and every replica.
func TestParseTraceHeaderNoAlloc(t *testing.T) {
	inputs := []string{
		"deadbeefcafef00d-000000000000002a",
		"not-a-trace-header",
		strings.Repeat("f", 1<<12),
	}
	for _, s := range inputs {
		s := s
		if n := testing.AllocsPerRun(100, func() { ParseTraceHeader(s) }); n != 0 {
			t.Errorf("ParseTraceHeader(%.20q...) allocates %v per run, want 0", s, n)
		}
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0x2a, ^uint64(0), 0xdeadbeefcafef00d} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%#x) = %q", id, s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("ParseTraceID(%q) = (%#x, %v), want %#x", s, got, ok, id)
		}
	}
	for _, s := range []string{"", "0000000000000000", "deadbeef", "deadbeefcafef00d-"} {
		if got, ok := ParseTraceID(s); ok || got != 0 {
			t.Errorf("ParseTraceID(%q) = (%#x, %v), want reject", s, got, ok)
		}
	}
}

func TestNewTraceIDNonzeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %#x within 64 draws", id)
		}
		seen[id] = true
	}
}

// FuzzParseTraceHeader hammers the forgiving-parse contract: no input may
// panic, and every accepted input must round-trip through Format to the
// identical string (the codec is bijective on its valid domain, modulo
// the uppercase-input/lowercase-output canonicalization).
func FuzzParseTraceHeader(f *testing.F) {
	f.Add("deadbeefcafef00d-000000000000002a")
	f.Add("DEADBEEFCAFEF00D-000000000000002A")
	f.Add("0000000000000000-0000000000000000")
	f.Add("")
	f.Add("-")
	f.Add("deadbeefcafef00d")
	f.Add(strings.Repeat("a", 33))
	f.Add(strings.Repeat("-", 33))
	f.Add("ffffffffffffffff-ffffffffffffffff")
	f.Fuzz(func(t *testing.T, s string) {
		trace, span, ok := ParseTraceHeader(s)
		if !ok {
			if trace != 0 || span != 0 {
				t.Fatalf("rejected input %q leaked values (%#x, %#x)", s, trace, span)
			}
			return
		}
		if trace == 0 {
			t.Fatalf("accepted zero trace from %q", s)
		}
		if len(s) != traceHeaderLen {
			t.Fatalf("accepted %d-byte input %q", len(s), s)
		}
		h := FormatTraceHeader(trace, span)
		if !strings.EqualFold(h, s) {
			t.Fatalf("round trip %q -> (%#x, %#x) -> %q", s, trace, span, h)
		}
		t2, s2, ok2 := ParseTraceHeader(h)
		if !ok2 || t2 != trace || s2 != span {
			t.Fatalf("reformatted %q does not re-parse: (%#x, %#x, %v)", h, t2, s2, ok2)
		}
	})
}
