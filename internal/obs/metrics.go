// Package obs is the repo-wide observability core: a named metrics
// registry (atomic counters, gauges, fixed-bucket histograms, labeled
// counters), lightweight span tracing over a lock-free ring buffer, a
// render-time runtime sampler (heap, GC, goroutines), Prometheus
// text-format and JSON exposition, and a structured-log (log/slog) setup
// shared by every CLI.
//
// The package is dependency-free (stdlib only) and allocation-conscious:
// recording on a counter, gauge, or histogram is one or two atomic
// operations with no locks and no allocation, so hot paths — every served
// prediction, every batch flush, every optimizer step — can stay
// instrumented at all times. Registry lookups (Counter, Gauge, Histogram)
// take a mutex and are meant for setup time: resolve metrics once, keep
// the pointers. Span recording allocates (one Span and its attrs), so it
// belongs on epoch/figure/flush granularity, not per-prediction.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, live sessions).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound histogram with atomic buckets. Bounds are
// bucket upper limits in ascending order; an implicit +Inf bucket catches
// the overflow. Observe, Count, Sum are wait-free; Mean and Quantile read
// a best-effort snapshot (buckets may be mid-update, which skews a
// quantile by at most the in-flight observations).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	// exemplars[i] holds the trace ID of the last traced observation
	// that landed in bucket i (0 = never). One word per bucket, last
	// writer wins: enough to link any bucket — in particular the outlier
	// tail — to a concrete span tree in /v1/fleet/trace, at the cost of
	// one extra atomic store on traced observations only.
	exemplars []atomic.Uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds,
// which are sorted and de-duplicated. At least one bound is required.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{
		bounds:    uniq,
		buckets:   make([]atomic.Uint64, len(uniq)+1),
		exemplars: make([]atomic.Uint64, len(uniq)+1),
	}
}

// ExpBounds returns n bucket bounds growing geometrically from start by
// factor — the usual shape for latencies and batch sizes.
func ExpBounds(start, factor float64, n int) []float64 {
	bounds := make([]float64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// DefaultLatencyBounds returns the shared request-latency bucket grid
// (50µs growing 1.5x for 32 buckets, topping out near 15s). The serving
// daemon's server-side histogram and the load generator's client-side
// histogram both use it, so their reported quantiles come from the same
// implementation on the same grid — any residual skew between them is
// real network/queueing time, not measurement disagreement.
func DefaultLatencyBounds() []float64 { return ExpBounds(50e-6, 1.5, 32) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v)
}

// ObserveTrace records one value and, when trace is nonzero, stamps it as
// the exemplar of the bucket the value landed in. The extra cost over
// Observe is a single atomic store on traced observations and nothing on
// untraced ones, so hot paths can call ObserveTrace unconditionally.
func (h *Histogram) ObserveTrace(v float64, trace uint64) {
	idx := h.observe(v)
	if trace != 0 {
		h.exemplars[idx].Store(trace)
	}
}

func (h *Histogram) observe(v float64) int {
	// First bound >= v; values above every bound land in the +Inf bucket.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return idx
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1), linearly
// interpolated within the containing bucket. Observations in the overflow
// bucket report the largest bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum uint64
	lo := 0.0
	for i, b := range h.bounds {
		c := h.buckets[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b-lo)
		}
		cum += c
		lo = b
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram for JSON
// reports.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // per-bucket counts; last is +Inf overflow
	// Exemplars, when present, is parallel to Buckets: the trace ID of the
	// last traced observation per bucket (0 = none). Omitted entirely when
	// no bucket ever saw a traced observation.
	Exemplars []uint64 `json:"exemplars,omitempty"`
	Count     uint64   `json:"count"`
	Sum       float64  `json:"sum"`
	Mean      float64  `json:"mean"`
	P50       float64  `json:"p50"`
	P99       float64  `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the snapshot's
// bucket counts, linearly interpolated within the containing bucket, the
// same estimate Histogram.Quantile computes live. It exists so a delta
// snapshot (see Sub) can report windowed quantiles.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	lo := 0.0
	for i, b := range s.Bounds {
		c := s.Buckets[i]
		if float64(cum+c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b-lo)
		}
		cum += c
		lo = b
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Sub returns the observations recorded between prev and s as a delta
// snapshot — the windowed histogram the fleet plane's SLO gauges quantile
// over. Counters that appear to run backwards (a restarted replica)
// clamp to zero rather than wrapping. Mean/P50/P99 are recomputed for
// the window; exemplars carry over from s (they are last-writer stamps,
// not counters).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds:    s.Bounds,
		Buckets:   make([]uint64, len(s.Buckets)),
		Exemplars: s.Exemplars,
	}
	for i := range s.Buckets {
		b := s.Buckets[i]
		if i < len(prev.Buckets) && prev.Buckets[i] <= b {
			b -= prev.Buckets[i]
		}
		out.Buckets[i] = b
		out.Count += b
	}
	if s.Count >= prev.Count && len(prev.Buckets) == len(s.Buckets) {
		out.Sum = s.Sum - prev.Sum
	} else { // restart: the window is just s
		out.Count = s.Count
		copy(out.Buckets, s.Buckets)
		out.Sum = s.Sum
	}
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
	}
	out.P50 = out.Quantile(0.50)
	out.P99 = out.Quantile(0.99)
	return out
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.Count(),
		Sum:     h.Sum(),
		Mean:    h.Mean(),
		P50:     h.Quantile(0.50),
		P99:     h.Quantile(0.99),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make([]uint64, len(h.exemplars))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// WriteMetric renders the histogram in the Prometheus text form
// (cumulative _bucket series plus _sum and _count).
func (h *Histogram) WriteMetric(w io.Writer, name string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(bound), cum)
	}
	cum += h.buckets[len(h.buckets)-1].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	// Exemplars render as comment lines (not OpenMetrics "# {trace_id}"
	// suffixes) so the plain text format — and its golden test — stays
	// parseable by strict Prometheus scrapers. Nothing is emitted for
	// histograms that never saw a traced observation.
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == 0 {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = trimFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "# exemplar %s_bucket{le=%q} trace=%s\n", name, le, FormatTraceID(ex))
	}
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
