package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(16) // exact power of two: ring size 16
	const total = 40    // wraps the ring 2.5 times
	for i := 0; i < total; i++ {
		tr.Start(fmt.Sprintf("span-%d", i)).Finish()
	}
	spans := tr.Spans(0)
	if len(spans) != 16 {
		t.Fatalf("got %d spans after wraparound, want ring size 16", len(spans))
	}
	// Only the newest 16 survive, oldest first.
	for i, sp := range spans {
		want := fmt.Sprintf("span-%d", total-16+i)
		if sp.Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, sp.Name, want)
		}
		if sp.End < sp.Start {
			t.Errorf("spans[%d] end %d before start %d", i, sp.End, sp.Start)
		}
	}
}

func TestTracerRoundsUpToPowerOfTwo(t *testing.T) {
	tr := NewTracer(20) // rounds up to 32
	for i := 0; i < 100; i++ {
		tr.Start("s").Finish()
	}
	if got := len(tr.Spans(0)); got != 32 {
		t.Fatalf("ring kept %d spans, want 32 (20 rounded up)", got)
	}
}

func TestTracerSpansMaxBound(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).Finish()
	}
	spans := tr.Spans(3)
	if len(spans) != 3 {
		t.Fatalf("Spans(3) returned %d", len(spans))
	}
	if spans[2].Name != "s9" {
		t.Fatalf("last of Spans(3) = %q, want newest s9", spans[2].Name)
	}
}

func TestSpanParentAndAttrs(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("root").SetAttr("mode", "test").SetInt("n", 7).SetFloat("loss", 0.25)
	child := root.StartChild("child")
	child.Finish()
	root.Finish()

	spans := tr.Spans(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans sorts by ID: the root (opened first) precedes the child even
	// though the child finished first.
	r, c := spans[0], spans[1]
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want root id %d", c.Parent, r.ID)
	}
	if r.Attrs["mode"] != "test" || r.Attrs["n"] != "7" || r.Attrs["loss"] != "0.25" {
		t.Errorf("root attrs = %v", r.Attrs)
	}
}

// TestNilTracerIsDisabled is the contract instrumented code relies on: a
// nil tracer (and the nil spans it hands out) must be safe through the
// whole span API.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetAttr("k", "v").SetInt("i", 1).SetFloat("f", 2)
	sp.StartChild("y").Finish()
	sp.Finish()
	if got := tr.Spans(10); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
}

func TestTracerConcurrentFinish(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Start("w").SetInt("i", int64(i)).Finish()
			}
		}()
	}
	// Concurrent reader while writers wrap the ring.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, sp := range tr.Spans(0) {
				if sp.Name != "w" {
					t.Errorf("unexpected span %q", sp.Name)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := len(tr.Spans(0)); got != 32 {
		t.Fatalf("ring holds %d spans, want 32", got)
	}
}

// TestTracerConcurrentWraparoundNotTorn hammers the ring through many
// wraparounds with concurrent writers while readers snapshot it, and
// checks every observed span for internal consistency: a "torn" span —
// one whose name, trace, and attrs disagree about which writer produced
// it — would mean a reader saw a half-published record. Publication is a
// single atomic pointer store, so any tear is a real ring bug. Run under
// -race this also exercises the happens-before edges.
func TestTracerConcurrentWraparoundNotTorn(t *testing.T) {
	tr := NewTracer(16) // tiny ring: ~1000 wraparounds over the test
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", g)
			for i := 0; i < perWriter; i++ {
				tr.Start(name).
					SetTrace(uint64(g)+1).
					SetInt("writer", int64(g)).
					Finish()
			}
		}(g)
	}

	readErr := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		defer close(readErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			spans := tr.Spans(0)
			for i, sp := range spans {
				want := fmt.Sprintf("w%d", sp.Trace-1)
				if sp.Name != want || sp.Attrs["writer"] != fmt.Sprint(sp.Trace-1) {
					readErr <- fmt.Errorf("torn span: name=%q trace=%d attrs=%v", sp.Name, sp.Trace, sp.Attrs)
					return
				}
				if sp.End < sp.Start {
					readErr <- fmt.Errorf("span %q ends (%d) before it starts (%d)", sp.Name, sp.End, sp.Start)
					return
				}
				if i > 0 && spans[i-1].ID >= sp.ID {
					readErr <- fmt.Errorf("ordering: spans[%d].ID=%d >= spans[%d].ID=%d (want oldest first)",
						i-1, spans[i-1].ID, i, sp.ID)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}

	// Quiescent ring: exactly the newest 16 spans, still oldest first.
	spans := tr.Spans(0)
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i-1].ID >= spans[i].ID {
			t.Fatalf("final ordering: spans[%d].ID=%d >= spans[%d].ID=%d", i-1, spans[i-1].ID, i, spans[i].ID)
		}
	}
}

// TestFilterTrace pins the cross-process assembly rule: trace members
// select themselves, and spans they Link to ride along even though links
// (batch flushes) carry no trace ID of their own.
func TestFilterTrace(t *testing.T) {
	tr := NewTracer(16)
	flush := tr.Start("serve.flush") // shared infrastructure span, no trace
	flush.Finish()
	other := tr.Start("noise").SetTrace(99)
	other.Finish()
	req := tr.Start("serve.request").SetTrace(7).SetLink(flush.SpanID())
	req.Finish()

	got := FilterTrace(tr.Spans(0), 7)
	if len(got) != 2 {
		t.Fatalf("FilterTrace kept %d spans, want 2 (request + linked flush)", len(got))
	}
	names := map[string]bool{}
	for _, sp := range got {
		names[sp.Name] = true
	}
	if !names["serve.request"] || !names["serve.flush"] {
		t.Fatalf("FilterTrace kept %v", names)
	}
	if got := FilterTrace(tr.Spans(0), 1234); len(got) != 0 {
		t.Fatalf("unknown trace returned %d spans", len(got))
	}
}

func TestSpanHandler(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		tr.Start("h").Finish()
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		query string
		want  int
	}{{"", 5}, {"?n=2", 2}, {"?n=bogus", 5}} {
		resp, err := srv.Client().Get(srv.URL + tc.query)
		if err != nil {
			t.Fatalf("GET %q: %v", tc.query, err)
		}
		var page struct {
			Count int     `json:"count"`
			Spans []*Span `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatalf("decoding %q: %v", tc.query, err)
		}
		resp.Body.Close()
		if page.Count != tc.want || len(page.Spans) != tc.want {
			t.Errorf("GET %q: count=%d len=%d, want %d", tc.query, page.Count, len(page.Spans), tc.want)
		}
	}
}
