package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)

	h.ObserveTrace(0.0005, 0xaaaa) // bucket 0
	h.ObserveTrace(0.05, 0xbbbb)   // bucket 2
	h.ObserveTrace(5.0, 0xcccc)    // +Inf overflow
	h.ObserveTrace(0.0005, 0xdddd) // bucket 0 again: last writer wins
	h.ObserveTrace(0.005, 0)       // untraced: counts, no exemplar
	h.Observe(0.005)               // plain Observe never stamps

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []uint64{0xdddd, 0, 0xbbbb, 0xcccc}
	if len(s.Exemplars) != len(want) {
		t.Fatalf("exemplars = %v, want len %d", s.Exemplars, len(want))
	}
	for i, w := range want {
		if s.Exemplars[i] != w {
			t.Errorf("exemplars[%d] = %#x, want %#x", i, s.Exemplars[i], w)
		}
	}

	var b strings.Builder
	h.WriteMetric(&b, "x_seconds")
	out := b.String()
	for _, line := range []string{
		`# exemplar x_seconds_bucket{le="0.001"} trace=000000000000dddd`,
		`# exemplar x_seconds_bucket{le="0.1"} trace=000000000000bbbb`,
		`# exemplar x_seconds_bucket{le="+Inf"} trace=000000000000cccc`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("prometheus text missing %q in:\n%s", line, out)
		}
	}
	if strings.Contains(out, `le="0.01"} trace=`) {
		t.Errorf("bucket with no traced observation rendered an exemplar:\n%s", out)
	}
}

func TestHistogramSnapshotOmitsExemplarsWhenUntraced(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.ObserveTrace(1.5, 0)
	if s := h.Snapshot(); s.Exemplars != nil {
		t.Fatalf("untraced histogram snapshot has exemplars %v", s.Exemplars)
	}
	var b strings.Builder
	h.WriteMetric(&b, "y")
	if strings.Contains(b.String(), "exemplar") {
		t.Fatalf("untraced histogram rendered exemplar lines:\n%s", b.String())
	}
}

// TestHistogramSnapshotSub pins the windowed-delta semantics the SLO
// gauges build on.
func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(0.5)
	h.Observe(1.5)
	prev := h.Snapshot()
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	cur := h.Snapshot()

	win := cur.Sub(prev)
	if win.Count != 3 {
		t.Fatalf("window count = %d, want 3", win.Count)
	}
	wantBuckets := []uint64{1, 0, 2, 0}
	for i, w := range wantBuckets {
		if win.Buckets[i] != w {
			t.Errorf("window bucket[%d] = %d, want %d", i, win.Buckets[i], w)
		}
	}
	if win.Sum < 6.49 || win.Sum > 6.51 {
		t.Errorf("window sum = %g, want 6.5", win.Sum)
	}
	if win.P99 <= 2 || win.P99 > 4 {
		t.Errorf("window p99 = %g, want in (2, 4]", win.P99)
	}

	// A replica restart makes counters run backwards; the window clamps to
	// the current snapshot instead of underflowing.
	restarted := NewHistogram(1, 2, 4)
	restarted.Observe(0.5)
	win = restarted.Snapshot().Sub(cur)
	if win.Count != 1 || win.Buckets[0] != 1 {
		t.Fatalf("restart window = count %d buckets %v, want just the new snapshot", win.Count, win.Buckets)
	}
}
