package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
)

// Registry is a named metrics registry. Registration (Counter, Gauge,
// Histogram, LabeledCounter, GaugeFunc) is idempotent and mutex-guarded —
// asking for an existing name returns the existing metric — while the
// returned metrics themselves stay lock-free. Register once at setup,
// keep the pointers, record forever.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	gaugeFuncs    map[string]func() int64
	hists         map[string]*Histogram
	labeled       map[string]*LabeledCounter
	labeledGauges map[string]*LabeledGauge
}

// Default is the process-wide registry: the training stack, checkpoint
// layer, fault injector, and experiments runner all register here, and
// every CLI's -metrics-out writes its snapshot. The serving daemon uses
// its own per-server registry instead so concurrent servers (tests) never
// collide.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		gaugeFuncs:    make(map[string]func() int64),
		hists:         make(map[string]*Histogram),
		labeled:       make(map[string]*LabeledCounter),
		labeledGauges: make(map[string]*LabeledGauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkFree(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkFree(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a callback gauge sampled at render
// time — the mechanism behind the runtime sampler and the worker-pool
// utilization gauges. The callback must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFuncs[name]; !ok {
		r.checkFree(name, "gauge func")
	}
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it over the given
// bucket bounds on first use (later calls ignore the bounds and return
// the existing histogram).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.checkFree(name, "histogram")
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// LabeledCounter returns the named labeled counter family, creating it
// with the given label key on first use.
func (r *Registry) LabeledCounter(name, label string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	lc, ok := r.labeled[name]
	if !ok {
		r.checkFree(name, "labeled counter")
		lc = &LabeledCounter{name: name, label: label, children: make(map[string]*Counter)}
		r.labeled[name] = lc
	}
	return lc
}

// LabeledGauge returns the named labeled gauge family, creating it with
// the given label key on first use. The gateway uses it for per-replica
// instantaneous values (inflight, health state) without one metric name
// per replica.
func (r *Registry) LabeledGauge(name, label string) *LabeledGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	lg, ok := r.labeledGauges[name]
	if !ok {
		r.checkFree(name, "labeled gauge")
		lg = &LabeledGauge{name: name, label: label, children: make(map[string]*Gauge)}
		r.labeledGauges[name] = lg
	}
	return lg
}

// checkFree panics when name is already registered under a different
// metric kind — a programming error that would otherwise silently shadow
// one metric with another. Callers hold r.mu.
func (r *Registry) checkFree(name, kind string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, f := r.gaugeFuncs[name]
	_, h := r.hists[name]
	_, l := r.labeled[name]
	_, lg := r.labeledGauges[name]
	if c || g || f || h || l || lg {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind (want %s)", name, kind))
	}
}

// LabeledCounter is a family of counters keyed by one label value
// (error class, injection point). Child lookup takes a read lock; hold
// the returned *Counter when the label value is hot.
type LabeledCounter struct {
	name, label string
	mu          sync.RWMutex
	children    map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use.
func (lc *LabeledCounter) With(value string) *Counter {
	lc.mu.RLock()
	c := lc.children[value]
	lc.mu.RUnlock()
	if c != nil {
		return c
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if c = lc.children[value]; c == nil {
		c = &Counter{}
		lc.children[value] = c
	}
	return c
}

// Total sums every child counter.
func (lc *LabeledCounter) Total() uint64 {
	lc.mu.RLock()
	defer lc.mu.RUnlock()
	var total uint64
	for _, c := range lc.children {
		total += c.Value()
	}
	return total
}

// Values returns a copy of the per-label counts.
func (lc *LabeledCounter) Values() map[string]uint64 {
	lc.mu.RLock()
	defer lc.mu.RUnlock()
	out := make(map[string]uint64, len(lc.children))
	for v, c := range lc.children {
		out[v] = c.Value()
	}
	return out
}

// LabeledGauge is a family of gauges keyed by one label value (replica
// name). Child lookup takes a read lock; hold the returned *Gauge when
// the label value is hot.
type LabeledGauge struct {
	name, label string
	mu          sync.RWMutex
	children    map[string]*Gauge
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (lg *LabeledGauge) With(value string) *Gauge {
	lg.mu.RLock()
	g := lg.children[value]
	lg.mu.RUnlock()
	if g != nil {
		return g
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if g = lg.children[value]; g == nil {
		g = &Gauge{}
		lg.children[value] = g
	}
	return g
}

// Values returns a copy of the per-label values.
func (lg *LabeledGauge) Values() map[string]int64 {
	lg.mu.RLock()
	defer lg.mu.RUnlock()
	out := make(map[string]int64, len(lg.children))
	for v, g := range lg.children {
		out[v] = g.Value()
	}
	return out
}

// RegistrySnapshot is a point-in-time JSON form of a registry — the
// -metrics-out payload every CLI can emit on exit, shaped like the other
// BENCH_* reports (one self-describing JSON object).
type RegistrySnapshot struct {
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Labeled       map[string]map[string]uint64 `json:"labeled,omitempty"`
	LabeledGauges map[string]map[string]int64  `json:"labeled_gauges,omitempty"`
}

// Snapshot captures every registered metric. Callback gauges are sampled
// now; counters and histograms are best-effort consistent (writers never
// stop).
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make([]namedCounter, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, namedCounter{n, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, namedGauge{n, g})
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	hists := make([]namedHist, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, namedHist{n, h})
	}
	labeled := make([]*LabeledCounter, 0, len(r.labeled))
	for _, lc := range r.labeled {
		labeled = append(labeled, lc)
	}
	labeledGauges := make([]*LabeledGauge, 0, len(r.labeledGauges))
	for _, lg := range r.labeledGauges {
		labeledGauges = append(labeledGauges, lg)
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:      make(map[string]uint64, len(counters)),
		Gauges:        make(map[string]int64, len(gauges)+len(funcs)),
		Histograms:    make(map[string]HistogramSnapshot, len(hists)),
		Labeled:       make(map[string]map[string]uint64, len(labeled)),
		LabeledGauges: make(map[string]map[string]int64, len(labeledGauges)),
	}
	for _, c := range counters {
		snap.Counters[c.name] = c.c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.name] = g.g.Value()
	}
	for n, f := range funcs {
		snap.Gauges[n] = f()
	}
	for _, h := range hists {
		snap.Histograms[h.name] = h.h.Snapshot()
	}
	for _, lc := range labeled {
		snap.Labeled[lc.name] = lc.Values()
	}
	for _, lg := range labeledGauges {
		snap.LabeledGauges[lg.name] = lg.Values()
	}
	return snap
}

type namedCounter struct {
	name string
	c    *Counter
}
type namedGauge struct {
	name string
	g    *Gauge
}
type namedHist struct {
	name string
	h    *Histogram
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, in deterministic (name-sorted) order. Labeled
// counters render one line per observed label value; families with no
// observations yet render nothing (absent-until-first-event, the
// Prometheus idiom).
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Labeled))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Histograms {
		names = append(names, n)
	}
	for n := range snap.Labeled {
		names = append(names, n)
	}
	for n := range snap.LabeledGauges {
		names = append(names, n)
	}
	sort.Strings(names)

	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	labelKeys := make(map[string]string, len(r.labeled)+len(r.labeledGauges))
	for n, lc := range r.labeled {
		labelKeys[n] = lc.label
	}
	for n, lg := range r.labeledGauges {
		labelKeys[n] = lg.label
	}
	r.mu.Unlock()

	for _, n := range names {
		if v, ok := snap.Counters[n]; ok {
			fmt.Fprintf(w, "%s %d\n", n, v)
			continue
		}
		if v, ok := snap.Gauges[n]; ok {
			fmt.Fprintf(w, "%s %d\n", n, v)
			continue
		}
		if h, ok := hists[n]; ok {
			h.WriteMetric(w, n)
			continue
		}
		if children, ok := snap.Labeled[n]; ok {
			label := labelKeys[n]
			values := make([]string, 0, len(children))
			for v := range children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", n, label, v, children[v])
			}
			continue
		}
		if children, ok := snap.LabeledGauges[n]; ok {
			label := labelKeys[n]
			values := make([]string, 0, len(children))
			for v := range children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", n, label, v, children[v])
			}
		}
	}
}

// JSONHandler serves the registry snapshot as JSON — the machine-readable
// sibling of /metrics that the gateway's fleet scraper consumes, so merge
// logic works on typed numbers instead of re-parsing Prometheus text.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Snapshot()) //nolint:errcheck // client gone is fine
	})
}

// PrometheusHandler serves the registry as text-format /metrics.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// WriteMetricsFile writes the registry snapshot as indented JSON to path.
// An empty path is a no-op, so CLIs can call it unconditionally with
// their -metrics-out flag value.
func WriteMetricsFile(path string, r *Registry) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: writing metrics snapshot: %w", err)
	}
	return nil
}
