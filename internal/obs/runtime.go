package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache throttles runtime.ReadMemStats (a stop-the-world-ish
// call) so render-time sampling from /metrics scrapes or snapshot writes
// never pays it more than once per second no matter how many gauges read
// from it.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) read() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) >= time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return &c.stat
}

// RegisterRuntimeMetrics adds the runtime sampler's gauges to r: heap in
// use, cumulative GC pause time and cycle count, and live goroutines.
// Sampling happens at render time (each /metrics scrape or snapshot),
// with the MemStats read throttled to once per second — no background
// goroutine, zero cost while nobody is looking. Idempotent: registering
// twice replaces the callbacks.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("runtime_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc("runtime_heap_alloc_bytes", func() int64 {
		return int64(cache.read().HeapAlloc)
	})
	r.GaugeFunc("runtime_heap_objects", func() int64 {
		return int64(cache.read().HeapObjects)
	})
	r.GaugeFunc("runtime_gc_pause_total_ns", func() int64 {
		return int64(cache.read().PauseTotalNs)
	})
	r.GaugeFunc("runtime_gc_cycles_total", func() int64 {
		return int64(cache.read().NumGC)
	})
}
