package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sortQuantile is the reference implementation the histogram estimate is
// checked against: sort every observation and index the rank directly.
func sortQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// bucketFor returns the upper bound of the bucket a value lands in (the
// resolution limit of any fixed-bucket quantile).
func bucketFor(bounds []float64, v float64) float64 {
	for _, b := range bounds {
		if v <= b {
			return b
		}
	}
	return bounds[len(bounds)-1]
}

func TestHistogramQuantileAgainstSortReference(t *testing.T) {
	bounds := ExpBounds(1e-4, 1.5, 32)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram(bounds...)
		n := 100 + rng.Intn(5000)
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over the bucket range plus some overflow values.
			vals[i] = 1e-4 * math.Pow(1.5, rng.Float64()*34)
			h.Observe(vals[i])
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got := h.Quantile(q)
			exact := sortQuantile(vals, q)
			// The estimate must land inside the exact value's bucket (or
			// one adjacent, for ranks that straddle a bucket edge).
			lo := bucketFor(bounds, exact) / (1.5 * 1.5)
			hi := bucketFor(bounds, exact) * 1.5
			if got < lo || got > hi {
				t.Fatalf("trial %d q=%g: estimate %g outside bucket envelope [%g, %g] of exact %g",
					trial, q, got, lo, hi, exact)
			}
		}
	}
}

func TestHistogramQuantileExactInBucket(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	// 10 observations all in the (2,4] bucket: every quantile interpolates
	// inside it.
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 2 || got > 4 {
			t.Fatalf("q=%g: got %g, want within (2,4]", q, got)
		}
	}
	if got := h.Quantile(0.5); math.Abs(got-3) > 1 {
		t.Fatalf("p50 of constant-3 observations = %g, want near 3", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %g, want largest bound 2", got)
	}
	s := h.Snapshot()
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", s.Buckets[len(s.Buckets)-1])
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 10)...)
	var want float64
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
		want += float64(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if math.Abs(h.Mean()-want/100) > 1e-9 {
		t.Fatalf("mean = %g, want %g", h.Mean(), want/100)
	}
}

func TestHistogramEmptyIsZero(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestExpBoundsShape(t *testing.T) {
	b := ExpBounds(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBounds[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}
