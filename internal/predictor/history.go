package predictor

// History is a global branch history register of bounded length, stored as
// a circular bit buffer so that very long histories (MTAGE uses thousands
// of bits) stay cheap to shift.
type History struct {
	bits []uint8 // one bit per byte for simplicity; lengths are small
	head int     // position of the most recent bit
	n    int     // capacity
}

// NewHistory returns a history register holding n bits, initialized to all
// zeros (not taken).
func NewHistory(n int) *History {
	return &History{bits: make([]uint8, n), n: n}
}

// Push shifts in the newest bit.
func (h *History) Push(taken bool) {
	h.head = (h.head + 1) % h.n
	if taken {
		h.bits[h.head] = 1
	} else {
		h.bits[h.head] = 0
	}
}

// Bit returns history bit i, where 0 is the most recent branch.
func (h *History) Bit(i int) uint8 {
	if i >= h.n {
		return 0
	}
	idx := h.head - i
	if idx < 0 {
		idx += h.n
	}
	return h.bits[idx]
}

// Len returns the capacity of the register.
func (h *History) Len() int { return h.n }

// Hash returns the low nbits of history folded into a uint64 by XOR-ing
// 64-bit chunks (used by simple predictors like gshare; TAGE uses
// FoldedHistory instead).
func (h *History) Hash(nbits int) uint64 {
	var out uint64
	for i := 0; i < nbits; i++ {
		out ^= uint64(h.Bit(i)) << (i % 64)
	}
	return out
}

// FoldedHistory incrementally maintains a compLen-bit fold of the most
// recent origLen history bits, in the style of Seznec's TAGE: pushing one
// new bit costs O(1) instead of re-hashing the entire history.
type FoldedHistory struct {
	comp     uint32
	compLen  int
	origLen  int
	outPoint int
}

// NewFoldedHistory folds origLen history bits into compLen bits.
func NewFoldedHistory(origLen, compLen int) *FoldedHistory {
	if compLen <= 0 || compLen > 30 || origLen <= 0 {
		panic("predictor: invalid folded history lengths")
	}
	return &FoldedHistory{
		compLen:  compLen,
		origLen:  origLen,
		outPoint: origLen % compLen,
	}
}

// Update shifts in the newest history bit and shifts out the bit that just
// aged past origLen. h must already contain the new bit at position 0 and
// still retain the outgoing bit at position origLen.
func (f *FoldedHistory) Update(h *History) {
	f.comp = (f.comp << 1) | uint32(h.Bit(0))
	f.comp ^= uint32(h.Bit(f.origLen)) << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// Value returns the current fold.
func (f *FoldedHistory) Value() uint32 { return f.comp }

// PathHistory tracks low-order PC bits of recent branches (TAGE mixes it
// into its index hash to disambiguate same-direction histories).
type PathHistory struct {
	v uint64
	n uint
}

// NewPathHistory keeps the last n bits of path information.
func NewPathHistory(n uint) *PathHistory {
	if n == 0 || n > 32 {
		panic("predictor: invalid path history length")
	}
	return &PathHistory{n: n}
}

// Push records a branch at pc.
func (p *PathHistory) Push(pc uint64) {
	p.v = ((p.v << 1) | (pc >> 2 & 1)) & ((1 << p.n) - 1)
}

// Value returns the path register.
func (p *PathHistory) Value() uint64 { return p.v }
