package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"branchnet/internal/trace"
)

func TestCounterSaturation(t *testing.T) {
	c := NewCounter(3, false)
	if c.Taken() {
		t.Fatal("init not-taken counter predicts taken")
	}
	for i := 0; i < 20; i++ {
		c.Update(true)
	}
	if c.Value() != 3 {
		t.Fatalf("3-bit counter saturated at %d, want 3", c.Value())
	}
	for i := 0; i < 20; i++ {
		c.Update(false)
	}
	if c.Value() != -4 {
		t.Fatalf("3-bit counter saturated at %d, want -4", c.Value())
	}
}

func TestCounterHysteresis(t *testing.T) {
	c := NewCounter(2, true) // value 0, weakly taken
	if !c.Weak() {
		t.Fatal("fresh counter should be weak")
	}
	c.Update(true) // 1, strongly taken
	c.Update(false)
	if !c.Taken() {
		t.Fatal("one not-taken must not flip a strong counter")
	}
	c.Update(false)
	if c.Taken() {
		t.Fatal("two not-takens should flip it")
	}
}

func TestCounterSetClamps(t *testing.T) {
	c := NewCounter(3, true)
	c.Set(100)
	if c.Value() != 3 {
		t.Fatalf("Set should clamp to 3, got %d", c.Value())
	}
	c.Set(-100)
	if c.Value() != -4 {
		t.Fatalf("Set should clamp to -4, got %d", c.Value())
	}
}

func TestCounterInvariant(t *testing.T) {
	f := func(updates []bool) bool {
		c := NewCounter(3, true)
		for _, u := range updates {
			c.Update(u)
			if c.Value() < c.Min() || c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUCounter(t *testing.T) {
	u := NewUCounter(2)
	for i := 0; i < 10; i++ {
		u.Inc()
	}
	if u.Value() != 3 {
		t.Fatalf("2-bit ucounter = %d, want 3", u.Value())
	}
	u.Halve()
	if u.Value() != 1 {
		t.Fatalf("halved = %d, want 1", u.Value())
	}
	u.Dec()
	u.Dec()
	if u.Value() != 0 {
		t.Fatalf("dec below zero = %d", u.Value())
	}
}

func TestHistoryShift(t *testing.T) {
	h := NewHistory(8)
	h.Push(true)
	h.Push(false)
	h.Push(true)
	// Most recent first: 1, 0, 1, then zeros.
	want := []uint8{1, 0, 1, 0, 0, 0, 0, 0}
	for i, w := range want {
		if got := h.Bit(i); got != w {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
	if h.Bit(100) != 0 {
		t.Fatal("out-of-range bit should read 0")
	}
}

func TestFoldedHistoryMatchesDirectFold(t *testing.T) {
	// The incremental fold must equal folding the history window
	// directly: XOR of compLen-bit chunks of the most recent origLen
	// bits, where bit i of the window lands at position i % compLen...
	// The incremental scheme instead defines the fold by its own
	// recurrence; equivalence is checked against a reference
	// implementation of the same recurrence applied from scratch.
	const origLen, compLen = 13, 5
	h := NewHistory(64)
	f := NewFoldedHistory(origLen, compLen)

	var bits []uint8 // newest first
	ref := func() uint32 {
		// Replay the recurrence from an empty history.
		var comp uint32
		for i := len(bits) - 1; i >= 0; i-- {
			comp = (comp << 1) | uint32(bits[i])
			idx := i + origLen
			var out uint32
			if idx < len(bits) {
				out = uint32(bits[idx])
			}
			comp ^= out << (origLen % compLen)
			comp ^= comp >> compLen
			comp &= (1 << compLen) - 1
		}
		return comp
	}

	rngBits := []bool{true, false, true, true, false, false, true, false,
		true, true, true, false, true, false, false, true, true, false,
		false, false, true, true, false, true}
	for _, b := range rngBits {
		h.Push(b)
		bit := uint8(0)
		if b {
			bit = 1
		}
		bits = append([]uint8{bit}, bits...)
		f.Update(h)
		if f.Value() != ref() {
			t.Fatalf("incremental fold %#x != reference %#x after %d pushes",
				f.Value(), ref(), len(bits))
		}
		if f.Value() >= 1<<compLen {
			t.Fatal("fold exceeds compLen bits")
		}
	}
}

func TestPathHistory(t *testing.T) {
	p := NewPathHistory(4)
	p.Push(0b100) // bit 2>>2? pc>>2&1 = 1
	if p.Value() != 1 {
		t.Fatalf("path = %b, want 1", p.Value())
	}
	p.Push(0b000)
	p.Push(0b100)
	if p.Value() != 0b101 {
		t.Fatalf("path = %b, want 101", p.Value())
	}
	for i := 0; i < 10; i++ {
		p.Push(0b100)
	}
	if p.Value() != 0b1111 {
		t.Fatalf("path should truncate to 4 bits, got %b", p.Value())
	}
}

func TestStaticBias(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 1, Taken: true}, {PC: 1, Taken: true}, {PC: 1, Taken: false},
		{PC: 2, Taken: false}, {PC: 2, Taken: false},
	}}
	s := NewStaticBias(tr)
	if !s.Predict(1) || s.Predict(2) {
		t.Fatal("static bias learned wrong directions")
	}
	res := Evaluate(s, tr)
	if res.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", res.Mispredicts)
	}
	if got := res.Accuracy(); got != 0.8 {
		t.Fatalf("accuracy = %v, want 0.8", got)
	}
	if got := res.BranchAccuracy(1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("branch 1 accuracy = %v", got)
	}
}

// alwaysTaken is a trivial predictor used to test Evaluate's bookkeeping.
type alwaysTaken struct{}

func (alwaysTaken) Predict(uint64) bool { return true }
func (alwaysTaken) Update(uint64, bool) {}
func (alwaysTaken) Name() string        { return "always-taken" }
func (alwaysTaken) Bits() int           { return 0 }

func TestEvaluateBookkeeping(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 7, Taken: false, Gap: 9},
		{PC: 7, Taken: true, Gap: 9},
		{PC: 9, Taken: false, Gap: 9},
	}}
	res := Evaluate(alwaysTaken{}, tr)
	if res.Branches != 3 || res.Mispredicts != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.PerBranch[7] != 1 || res.PerBranch[9] != 1 {
		t.Fatalf("per-branch = %v", res.PerBranch)
	}
	if got := res.MPKI(tr); got != 2*1000.0/30.0 {
		t.Fatalf("MPKI = %v", got)
	}
}
