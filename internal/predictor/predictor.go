// Package predictor defines the interfaces and shared building blocks of
// the runtime branch predictors (gshare, hashed perceptron, TAGE-SC-L) and
// of the hybrid BranchNet predictor: saturating counters, global/path
// history registers, folded histories, and a trace evaluation harness.
package predictor

import "branchnet/internal/trace"

// Predictor is a runtime conditional-branch predictor driven record by
// record. The contract is Predict(pc) immediately followed by
// Update(pc, taken) for the same dynamic branch; implementations may carry
// internal state (e.g. TAGE's provider-table choice) from Predict to the
// matching Update.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction and
	// advances its histories. It must be called exactly once after each
	// Predict, with the same pc.
	Update(pc uint64, taken bool)
	// Name identifies the configuration for reports.
	Name() string
	// Bits returns the predictor's storage budget in bits, for honesty
	// checks against the paper's hardware budgets.
	Bits() int
}

// Result summarizes an evaluation run.
type Result struct {
	Branches    uint64
	Mispredicts uint64
	// PerBranch maps branch PC to its misprediction count.
	PerBranch map[uint64]uint64
	// ExecPerBranch maps branch PC to its execution count.
	ExecPerBranch map[uint64]uint64
}

// Accuracy returns the overall fraction of correct predictions.
func (r Result) Accuracy() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 1 - float64(r.Mispredicts)/float64(r.Branches)
}

// BranchAccuracy returns the accuracy on a single static branch.
func (r Result) BranchAccuracy(pc uint64) float64 {
	n := r.ExecPerBranch[pc]
	if n == 0 {
		return 0
	}
	return 1 - float64(r.PerBranch[pc])/float64(n)
}

// MPKI returns the result's mispredictions per kilo-instruction given the
// evaluated trace.
func (r Result) MPKI(tr *trace.Trace) float64 {
	return trace.MPKI(float64(r.Mispredicts), tr.Instructions())
}

// Evaluate drives p over tr and returns misprediction statistics.
func Evaluate(p Predictor, tr *trace.Trace) Result {
	res, _ := evaluate(p, tr, false)
	return res
}

// CorrectLog records, per static branch, whether each dynamic occurrence
// (in trace order) was predicted correctly. It lets offline training
// compare a candidate model against the baseline on exactly the same
// dynamic instances, instead of comparing a subsample against a full-run
// aggregate.
type CorrectLog map[uint64][]bool

// Correct reports whether occurrence i of the branch at pc was predicted
// correctly (false when the occurrence was not logged).
func (l CorrectLog) Correct(pc, i uint64) bool {
	v := l[pc]
	return i < uint64(len(v)) && v[i]
}

// EvaluateWithLog is Evaluate plus a per-branch, per-occurrence
// correctness log. Memory is one bool per trace record.
func EvaluateWithLog(p Predictor, tr *trace.Trace) (Result, CorrectLog) {
	return evaluate(p, tr, true)
}

func evaluate(p Predictor, tr *trace.Trace, logCorrect bool) (Result, CorrectLog) {
	res := Result{
		PerBranch:     make(map[uint64]uint64),
		ExecPerBranch: make(map[uint64]uint64),
	}
	var log CorrectLog
	if logCorrect {
		log = make(CorrectLog)
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		pred := p.Predict(r.PC)
		p.Update(r.PC, r.Taken)
		res.Branches++
		res.ExecPerBranch[r.PC]++
		if pred != r.Taken {
			res.Mispredicts++
			res.PerBranch[r.PC]++
		}
		if logCorrect {
			log[r.PC] = append(log[r.PC], pred == r.Taken)
		}
	}
	return res, log
}

// StaticBias is the strongest offline predictor usable without runtime
// state: always predict the branch's profiled majority direction. The paper
// (§II-B) uses it to show prior offline techniques barely help; we keep it
// as the simplest baseline.
type StaticBias struct {
	Taken map[uint64]bool
}

// NewStaticBias profiles tr and returns a static-bias predictor.
func NewStaticBias(tr *trace.Trace) *StaticBias {
	prof := trace.NewProfile(tr)
	m := make(map[uint64]bool, len(prof.Branches))
	for pc, bs := range prof.Branches {
		m[pc] = bs.Bias() >= 0.5
	}
	return &StaticBias{Taken: m}
}

// Predict implements Predictor.
func (s *StaticBias) Predict(pc uint64) bool { return s.Taken[pc] }

// Update implements Predictor (static predictors do not learn online).
func (s *StaticBias) Update(uint64, bool) {}

// Name implements Predictor.
func (s *StaticBias) Name() string { return "static-bias" }

// Bits implements Predictor: one direction bit per profiled static branch.
func (s *StaticBias) Bits() int { return len(s.Taken) }
