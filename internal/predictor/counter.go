package predictor

// Counter is an n-bit signed saturating counter centered at zero, the basic
// storage cell of table-based predictors. An n-bit counter ranges over
// [-2^(n-1), 2^(n-1)-1]; its prediction is "taken" when non-negative.
type Counter struct {
	v    int16
	bits uint
}

// NewCounter returns a counter with the given width, initialized to weakly
// not-taken (-1) or weakly taken (0).
func NewCounter(bits uint, taken bool) Counter {
	c := Counter{bits: bits}
	if !taken {
		c.v = -1
	}
	return c
}

// Min and Max return the saturation bounds.
func (c Counter) Min() int16 { return -(1 << (c.bits - 1)) }

// Max returns the upper saturation bound.
func (c Counter) Max() int16 { return 1<<(c.bits-1) - 1 }

// Taken reports the counter's predicted direction.
func (c Counter) Taken() bool { return c.v >= 0 }

// Value returns the raw counter value.
func (c Counter) Value() int16 { return c.v }

// Weak reports whether the counter is in one of its two weakest states.
func (c Counter) Weak() bool { return c.v == 0 || c.v == -1 }

// Update shifts the counter toward the outcome, saturating.
func (c *Counter) Update(taken bool) {
	if taken {
		if c.v < c.Max() {
			c.v++
		}
	} else if c.v > c.Min() {
		c.v--
	}
}

// Set forces the counter to a saturation-clamped value.
func (c *Counter) Set(v int16) {
	switch {
	case v > c.Max():
		c.v = c.Max()
	case v < c.Min():
		c.v = c.Min()
	default:
		c.v = v
	}
}

// UCounter is an n-bit unsigned useful/confidence counter.
type UCounter struct {
	v    uint8
	bits uint
}

// NewUCounter returns an unsigned saturating counter of the given width.
func NewUCounter(bits uint) UCounter { return UCounter{bits: bits} }

// Value returns the raw value.
func (u UCounter) Value() uint8 { return u.v }

// Max returns the saturation bound.
func (u UCounter) Max() uint8 { return 1<<u.bits - 1 }

// Inc increments, saturating.
func (u *UCounter) Inc() {
	if u.v < u.Max() {
		u.v++
	}
}

// Dec decrements, saturating at zero.
func (u *UCounter) Dec() {
	if u.v > 0 {
		u.v--
	}
}

// Halve ages the counter (used by TAGE's periodic useful-bit reset).
func (u *UCounter) Halve() { u.v >>= 1 }

// Reset clears the counter.
func (u *UCounter) Reset() { u.v = 0 }
