package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"branchnet/internal/obs"
	"branchnet/internal/serve"
)

// Config tunes the gateway. Zero values select the defaults noted per
// field.
type Config struct {
	// Replicas are the branchnet-serve base URLs the gateway fronts
	// (e.g. "http://127.0.0.1:8601"). At least one is required.
	Replicas []string
	// VNodes is the consistent-hash virtual-node count per replica
	// (default DefaultVNodes).
	VNodes int
	// HealthInterval is the /healthz probe period (default 500ms).
	HealthInterval time.Duration
	// FailThreshold is how many consecutive failed probes or connections
	// mark a replica down (default 3).
	FailThreshold int
	// RouteBudget bounds one request's total time in the gateway across
	// 429 backoff waits and drain re-routes (default 5s).
	RouteBudget time.Duration
	// SessionTTL evicts gateway session pins idle longer than this
	// (default 5m; <0 disables). It should be at least the replicas' own
	// session TTL — a pin outliving the server session is harmless, the
	// reverse re-routes a live session.
	SessionTTL time.Duration
	// TraceSample, when positive, mints a fresh distributed trace for one
	// in every TraceSample predict requests that arrive without a
	// Branchnet-Trace header (0 disables gateway-side sampling; requests
	// that already carry a trace are always propagated).
	TraceSample int
	// SLOWindow is the lookback window of the SLO burn-rate gauges —
	// successive fleet scrapes at least this far apart are differenced to
	// get windowed error ratios and quantiles (default 10s).
	SLOWindow time.Duration
	// SLOTargetP99 is the per-request latency objective the p99 burn
	// gauge compares the windowed fleet p99 against (default 250ms).
	SLOTargetP99 time.Duration
	// Client is the upstream HTTP client (default: 10s timeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RouteBudget <= 0 {
		c.RouteBudget = 5 * time.Second
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 10 * time.Second
	}
	if c.SLOTargetP99 <= 0 {
		c.SLOTargetP99 = 250 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return c
}

// gwSession is one session's routing pin. Its mutex serializes the data
// path against migration: a predict holds it across the upstream call, a
// migration holds it across export+import, so state can never be moved
// mid-request and a request can never hit a replica that no longer owns
// the session.
type gwSession struct {
	mu sync.Mutex
	// replica holds the owning replica URL ("" = not yet pinned). Logical
	// transitions happen with mu held; the value itself is stored
	// atomically so sessionsOn can snapshot pins without acquiring every
	// session lock (which in-flight predicts hold across upstream calls).
	replica  atomic.Value
	lastUsed time.Time
	// lost marks that the owning replica died with the session state on
	// it. The next request for the id gets one 410 — serving it from a
	// fresh replica with a 200 would silently fork the session's history —
	// after which the id starts over as a fresh session.
	lost bool
	// epoch is the owning replica's session epoch at pin time (guarded by
	// mu). If the replica later answers with a different epoch, it
	// restarted with this session's state on it: the answer came from a
	// process that never saw the session's history, so the session is lost
	// even though the address stayed up the whole time.
	epoch string
}

// owner reads the session's current pin.
func (s *gwSession) owner() string {
	url, _ := s.replica.Load().(string)
	return url
}

// setOwner updates the pin; callers hold s.mu.
func (s *gwSession) setOwner(url string) { s.replica.Store(url) }

// Gateway fronts a fleet of branchnet-serve replicas: consistent-hash
// session routing with strict affinity, health-driven failover, drain
// orchestration, and reload fan-out. Create with New, expose Handler,
// stop with Close.
type Gateway struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	replicas map[string]*replica
	ring     *Ring
	sessions map[string]*gwSession

	reg    *obs.Registry
	tracer *obs.Tracer
	mux    *http.ServeMux

	requests       *obs.Counter
	rerouted       *obs.Counter
	failovers      *obs.Counter
	migrated       *obs.Counter
	lost           *obs.Counter
	epochRestarts  *obs.Counter
	rebalances     *obs.Counter
	upstream429    *obs.Counter
	upstreamErrors *obs.Counter
	routes         *obs.LabeledCounter
	inflight       *obs.LabeledGauge
	upstreamSec    *obs.Histogram

	traceSeq atomic.Uint64 // predict requests seen, for 1-in-N trace minting

	stop chan struct{}
	done chan struct{}
}

// New builds a gateway over cfg.Replicas (all presumed healthy until the
// first probe corrects that) and starts its health loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: at least one replica URL is required")
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	g := &Gateway{
		cfg:      cfg,
		client:   cfg.Client,
		replicas: make(map[string]*replica),
		ring:     NewRing(cfg.VNodes),
		sessions: make(map[string]*gwSession),
		reg:      reg,
		tracer:   obs.NewTracer(512),
		mux:      http.NewServeMux(),

		requests:       reg.Counter("gateway_requests_total"),
		rerouted:       reg.Counter("gateway_rerouted_total"),
		failovers:      reg.Counter("gateway_failovers_total"),
		migrated:       reg.Counter("gateway_sessions_migrated_total"),
		lost:           reg.Counter("gateway_sessions_lost_total"),
		epochRestarts:  reg.Counter("gateway_epoch_restarts_total"),
		rebalances:     reg.Counter("gateway_ring_rebalances_total"),
		upstream429:    reg.Counter("gateway_upstream_429_total"),
		upstreamErrors: reg.Counter("gateway_upstream_errors_total"),
		routes:         reg.LabeledCounter("gateway_routes_total", "replica"),
		inflight:       reg.LabeledGauge("gateway_replica_inflight", "replica"),
		upstreamSec:    reg.Histogram("gateway_upstream_seconds", obs.DefaultLatencyBounds()...),

		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, url := range cfg.Replicas {
		if g.replicas[url] != nil {
			return nil, fmt.Errorf("gateway: duplicate replica URL %q", url)
		}
		g.replicas[url] = &replica{
			url:      url,
			inflight: g.inflight.With(url),
			routed:   g.routes.With(url),
		}
		g.ring.Add(url)
	}
	reg.GaugeFunc("gateway_ready_replicas", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.ring.Len())
	})
	reg.GaugeFunc("gateway_sessions", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(len(g.sessions))
	})
	reg.GaugeFunc("gateway_slo_error_ratio_ppm", func() int64 {
		return g.sloStatus().ErrorRatioPPM
	})
	reg.GaugeFunc("gateway_slo_p99_burn_ppm", func() int64 {
		return g.sloStatus().P99BurnPPM
	})
	g.mux.HandleFunc("/v1/predict", g.handlePredict)
	g.mux.HandleFunc("/v1/reload", g.handleReload)
	g.mux.HandleFunc("/v1/drain", g.handleDrain)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /v1/fleet/stats", g.handleFleetStats)
	g.mux.HandleFunc("GET /v1/fleet/trace", g.handleFleetTrace)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.Handle("/metrics", reg.PrometheusHandler())
	g.mux.Handle("/v1/obs", reg.JSONHandler())
	g.mux.Handle("/debug/spans", g.tracer.Handler())
	go g.healthLoop()
	return g, nil
}

// Handler returns the gateway's HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Obs returns the gateway's metrics registry.
func (g *Gateway) Obs() *obs.Registry { return g.reg }

// Tracer returns the gateway's span tracer (health transitions,
// migrations, reload fan-outs).
func (g *Gateway) Tracer() *obs.Tracer { return g.tracer }

// Close stops the health loop. It does not touch the replicas.
func (g *Gateway) Close() {
	close(g.stop)
	<-g.done
}

// session returns the pin entry for id, creating it on first sight.
func (g *Gateway) session(id string) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.sessions[id]
	if s == nil {
		s = &gwSession{}
		g.sessions[id] = s
	}
	return s
}

// route picks the ring owner for a NEW session (or a re-pin after loss).
// Empty when no replica is accepting new sessions.
func (g *Gateway) route(id string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ring.Lookup(id)
}

func (g *Gateway) replicaFor(url string) *replica {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.replicas[url]
}

func (g *Gateway) stateOf(url string) ReplicaState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rep := g.replicas[url]; rep != nil {
		return rep.state
	}
	return StateDown
}

// forward proxies one POST body to a replica path, returning the full
// response. The per-replica inflight gauge brackets the call and the
// upstream latency histogram observes it (exemplar-stamped when the call
// carries a trace). A nonzero trace is propagated to the replica as a
// Branchnet-Trace header naming span — the gateway's route span — as the
// remote parent.
func (g *Gateway) forward(rep *replica, path string, body []byte, trace, span uint64) (int, http.Header, []byte, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	req, err := http.NewRequest(http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if hdr := obs.FormatTraceHeader(trace, span); hdr != "" {
		req.Header.Set(obs.TraceHeader, hdr)
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	g.upstreamSec.ObserveTrace(time.Since(start).Seconds(), trace)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is fine
}

// relay copies an upstream response to the client verbatim, preserving
// the backpressure headers so Retry-After hints survive the hop.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	for _, h := range []string{"Retry-After", serve.RetryAfterMsHeader} {
		if v := hdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client gone is fine
}

// maxPredictBody bounds a proxied predict request.
const maxPredictBody = 8 << 20

// handlePredict routes one predict request with strict session affinity:
// a pinned session always goes to its owner (migration moves the pin
// under the session lock, never the data path); an unpinned session goes
// to its ring owner. Per-replica Retry-After backoff is honored before
// and after forwarding, and a replica discovered draining on the data
// path is retired from the ring immediately rather than on the next
// probe.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	g.requests.Inc()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"reading body: " + err.Error()})
		return
	}
	var req struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if req.Session == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"session is required"})
		return
	}

	// Propagate an incoming trace, or mint one for a 1-in-TraceSample
	// slice of unheadered traffic. Untraced requests skip span work
	// entirely.
	trace, remoteSpan, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	if trace == 0 && g.cfg.TraceSample > 0 && g.traceSeq.Add(1)%uint64(g.cfg.TraceSample) == 0 {
		trace = obs.NewTraceID()
	}
	var sp *obs.Span
	if trace != 0 {
		sp = g.tracer.Start("gateway.route").SetTrace(trace).SetRemoteParent(remoteSpan).
			SetAttr("session", req.Session)
		w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(trace, sp.SpanID()))
		defer sp.Finish()
	}

	sess := g.session(req.Session)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.lastUsed = time.Now()

	deadline := time.Now().Add(g.cfg.RouteBudget)
	for {
		if sess.lost {
			// The failover sweep recorded the owner's death since this
			// session's last request. Report the loss exactly once; the id
			// is fresh again afterwards.
			sess.lost = false
			writeJSON(w, http.StatusGone, errorResponse{"session lost: owning replica went down"})
			return
		}
		target := sess.owner()
		if target != "" && g.stateOf(target) == StateDown {
			// The owner died and this request beat the failover sweep to the
			// session. Serving the id from a fresh replica would silently
			// fork its history (a 200 carrying diverging predictions), so
			// the loss is made loud: unpin, count it, answer 410. The next
			// use of the id starts fresh.
			sess.setOwner("")
			sess.epoch = ""
			g.lost.Inc()
			writeJSON(w, http.StatusGone, errorResponse{"session lost: owning replica " + target + " is down"})
			return
		}
		fresh := target == ""
		if fresh {
			target = g.route(req.Session)
			if target == "" {
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no ready replicas"})
				return
			}
		}
		rep := g.replicaFor(target)
		if rep == nil { // replica table never shrinks, but be defensive
			writeJSON(w, http.StatusBadGateway, errorResponse{"unknown replica " + target})
			return
		}
		// Honor the replica's standing Retry-After window before adding load.
		if d := rep.backoff(); d > 0 {
			if time.Now().Add(d).After(deadline) {
				// Echo the replica's ACTUAL remaining backoff window, in both
				// resolutions — a hardcoded "1s" hint made every client of an
				// overloaded fleet retry in lockstep a full second later even
				// when the window was nearly over.
				secs := int64((d + time.Second - 1) / time.Second)
				if secs < 1 {
					secs = 1
				}
				ms := int64(d / time.Millisecond)
				if ms < 1 {
					ms = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				w.Header().Set(serve.RetryAfterMsHeader, strconv.FormatInt(ms, 10))
				writeJSON(w, http.StatusTooManyRequests, errorResponse{"replica backpressure exceeds route budget"})
				return
			}
			time.Sleep(d)
		}
		sp.SetAttr("replica", target)
		status, hdr, respBody, err := g.forward(rep, "/v1/predict", body, trace, sp.SpanID())
		if err != nil {
			g.upstreamErrors.Inc()
			g.noteConnFailure(target)
			writeJSON(w, http.StatusBadGateway, errorResponse{"upstream " + target + ": " + err.Error()})
			return
		}
		rep.routed.Inc()
		switch {
		case status == http.StatusTooManyRequests:
			g.upstream429.Inc()
			hint := serve.ParseRetryAfter(hdr)
			if hint <= 0 {
				hint = 5 * time.Millisecond
			}
			rep.setBackoff(hint)
			if time.Now().Add(hint).After(deadline) {
				relay(w, status, hdr, respBody) // hand the hint to the client
				return
			}
			time.Sleep(hint)
			// Affinity is mandatory: a 429 retries the SAME replica.
			continue
		case status == http.StatusServiceUnavailable && fresh:
			// The replica began draining before the health loop noticed.
			// Retire it now and re-route; existing sessions are unaffected
			// (they keep being served while migration runs).
			g.rerouted.Inc()
			if g.markDraining(target) {
				go g.migrateFrom(target)
			}
			if time.Now().After(deadline) {
				relay(w, status, hdr, respBody)
				return
			}
			continue
		case status == http.StatusOK:
			if ep := hdr.Get(serve.EpochHeader); ep != "" {
				if g.noteEpoch(target, ep) {
					// First contact with the restarted process happened on the
					// data path — expire the rest of its pinned sessions too
					// (async: this handler holds sess.mu, which expireEpoch
					// also takes per session).
					g.epochRestarts.Inc()
					go g.expireEpoch(target, ep)
				}
				if !fresh && sess.epoch != "" && sess.epoch != ep {
					// The owner restarted on the same address since this
					// session was pinned. The 200 in hand came from a process
					// that never saw the session's history — relaying it would
					// silently fork the stream, so the loss is made loud.
					sess.setOwner("")
					sess.epoch = ""
					g.lost.Inc()
					writeJSON(w, http.StatusGone, errorResponse{"session lost: replica " + target + " restarted"})
					return
				}
				sess.epoch = ep
			}
			sess.setOwner(target)
			relay(w, status, hdr, respBody)
			return
		default:
			relay(w, status, hdr, respBody)
			return
		}
	}
}

// noteEpoch records a replica's session epoch and reports whether a
// previously recorded epoch changed — i.e. the process restarted. A
// restart on the same address can be invisible to liveness checks (fast
// supervisor restarts land between probes and refuse no connections),
// but the epoch cannot lie: a new process minted a new one, and every
// session pinned before the change lost its state.
func (g *Gateway) noteEpoch(url, epoch string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := g.replicas[url]
	if rep == nil || rep.epoch == epoch {
		return false
	}
	changed := rep.epoch != ""
	rep.epoch = epoch
	return changed
}

// epochOf returns the last epoch recorded for url ("" if none yet).
func (g *Gateway) epochOf(url string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if rep := g.replicas[url]; rep != nil {
		return rep.epoch
	}
	return ""
}

// expireEpoch marks lost every session pinned to url under an epoch
// other than the current one. Sessions with an unknown pin epoch are
// left alone (migrated pins adopt the destination's epoch lazily), and
// sessions already re-pinned under the new epoch are untouched.
func (g *Gateway) expireEpoch(url, epoch string) {
	sp := g.tracer.Start("gateway.epoch_restart").SetAttr("replica", url).SetAttr("epoch", epoch)
	n := 0
	for _, id := range g.sessionsOn(url) {
		sess := g.session(id)
		sess.mu.Lock()
		if sess.owner() == url && sess.epoch != "" && sess.epoch != epoch {
			sess.setOwner("")
			sess.epoch = ""
			sess.lost = true
			n++
			g.lost.Inc()
		}
		sess.mu.Unlock()
	}
	sp.SetInt("lost", int64(n)).Finish()
}

// noteConnFailure counts a data-path connection failure against the
// replica, so a hard-killed replica is detected at request speed instead
// of probe speed. Crossing the threshold triggers the same down
// transition the health loop would take.
func (g *Gateway) noteConnFailure(url string) {
	g.mu.Lock()
	rep := g.replicas[url]
	if rep == nil || rep.state == StateDown {
		g.mu.Unlock()
		return
	}
	rep.fails++
	down := rep.fails >= g.cfg.FailThreshold
	if down {
		rep.state = StateDown
		if g.ring.Remove(url) {
			g.rebalances.Inc()
		}
	}
	g.mu.Unlock()
	if down {
		go g.failoverDead(url)
	}
}

// markDraining transitions a healthy replica to draining and pulls it
// from the ring. It reports whether THIS call made the transition — the
// caller that wins starts the migration, everyone else stands down.
func (g *Gateway) markDraining(url string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := g.replicas[url]
	if rep == nil || rep.state != StateHealthy {
		return false
	}
	rep.state = StateDraining
	if g.ring.Remove(url) {
		g.rebalances.Inc()
	}
	return true
}

// sessionsOn snapshots the ids currently pinned to url.
func (g *Gateway) sessionsOn(url string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := make([]string, 0, 16)
	for id, s := range g.sessions {
		// The pin may move after this snapshot; migrateFrom re-checks
		// under s.mu before acting on it.
		if s.owner() == url {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// migrateFrom moves every session pinned to a draining replica onto its
// new ring owner: export-and-remove from the source (GET
// /v1/sessions/{id}?remove=1 — after which the source no longer owns the
// id), import the BNSS blob on the destination, re-pin. Each session
// moves under its own lock, so the data path observes either the old
// owner with state intact or the new owner with state intact — never the
// gap in between. Sessions whose journal was dropped (409) or that hit
// any transfer error are counted lost and unpinned; their next request
// starts fresh on a healthy replica.
func (g *Gateway) migrateFrom(url string) (migrated, lost int) {
	sp := g.tracer.Start("gateway.migrate").SetAttr("replica", url)
	defer func() {
		sp.SetInt("migrated", int64(migrated)).SetInt("lost", int64(lost)).Finish()
		g.failovers.Inc()
	}()
	for _, id := range g.sessionsOn(url) {
		sess := g.session(id)
		sess.mu.Lock()
		if sess.owner() != url { // moved or re-pinned since the snapshot
			sess.mu.Unlock()
			continue
		}
		if dest, ok := g.moveSession(id, url); ok {
			sess.setOwner(dest)
			sess.epoch = g.epochOf(dest) // may be "": adopted lazily on next 200
			migrated++
			g.migrated.Inc()
		} else {
			sess.setOwner("")
			sess.epoch = ""
			lost++
			g.lost.Inc()
		}
		sess.mu.Unlock()
	}
	return migrated, lost
}

// moveSession transfers one session url -> its new ring owner, returning
// the destination on success.
func (g *Gateway) moveSession(id, url string) (string, bool) {
	resp, err := g.client.Get(url + "/v1/sessions/" + id + "?remove=1")
	if err != nil {
		g.upstreamErrors.Inc()
		return "", false
	}
	blob, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr != nil || resp.StatusCode != http.StatusOK {
		return "", false
	}
	dest := g.route(id)
	if dest == "" {
		return "", false
	}
	post, err := g.client.Post(dest+"/v1/sessions", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		g.upstreamErrors.Inc()
		return "", false
	}
	io.Copy(io.Discard, post.Body) //nolint:errcheck
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		return "", false
	}
	return dest, true
}

// failoverDead unpins every session owned by a dead replica. Their state
// is unreachable, so they are all counted lost and flagged: the next
// request for each id gets one 410 (clients mid-stream must learn their
// history is gone — see gwSession.lost), then the id starts fresh.
func (g *Gateway) failoverDead(url string) {
	sp := g.tracer.Start("gateway.failover").SetAttr("replica", url)
	n := 0
	for _, id := range g.sessionsOn(url) {
		sess := g.session(id)
		sess.mu.Lock()
		if sess.owner() == url {
			sess.setOwner("")
			sess.epoch = ""
			sess.lost = true
			n++
			g.lost.Inc()
		}
		sess.mu.Unlock()
	}
	g.failovers.Inc()
	sp.SetInt("lost", int64(n)).Finish()
}

// healthLoop probes every replica each HealthInterval and applies state
// transitions: healthy replicas join the ring, draining ones leave it and
// get their sessions migrated, dead ones leave it and get their sessions
// failed over. It also sweeps idle session pins.
func (g *Gateway) healthLoop() {
	defer close(g.done)
	tick := time.NewTicker(g.cfg.HealthInterval)
	defer tick.Stop()
	lastSweep := time.Now()
	for {
		select {
		case <-g.stop:
			return
		case now := <-tick.C:
			for _, url := range g.replicaURLs() {
				g.probe(url)
			}
			// The fleet observability plane rides the same cadence: one
			// metrics+spans scrape per live replica per probe round.
			g.scrapeFleet(now)
			if g.cfg.SessionTTL > 0 && now.Sub(lastSweep) > g.cfg.SessionTTL/4 {
				g.sweepSessions(now)
				lastSweep = now
			}
		}
	}
}

func (g *Gateway) replicaURLs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	urls := make([]string, 0, len(g.replicas))
	for u := range g.replicas {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// probe checks one replica's /healthz and applies the resulting state
// transition.
func (g *Gateway) probe(url string) {
	resp, err := g.client.Get(url + "/healthz")
	var status string
	code := 0
	if err == nil {
		code = resp.StatusCode
		var hr struct {
			Status string `json:"status"`
			Epoch  string `json:"epoch"`
		}
		json.NewDecoder(resp.Body).Decode(&hr) //nolint:errcheck // body shape is advisory
		resp.Body.Close()
		status = hr.Status
		if hr.Epoch != "" && g.noteEpoch(url, hr.Epoch) {
			g.epochRestarts.Inc()
			g.expireEpoch(url, hr.Epoch)
		}
	}

	g.mu.Lock()
	rep := g.replicas[url]
	if rep == nil {
		g.mu.Unlock()
		return
	}
	prev := rep.state
	var migrate, failover bool
	switch {
	case err != nil || code >= 500 && status != "draining":
		rep.fails++
		if rep.fails >= g.cfg.FailThreshold && prev != StateDown {
			rep.state = StateDown
			if g.ring.Remove(url) {
				g.rebalances.Inc()
			}
			failover = true
		}
	case code == http.StatusOK:
		rep.fails = 0
		if prev != StateHealthy {
			rep.state = StateHealthy
			if g.ring.Add(url) {
				g.rebalances.Inc()
			}
		}
	case status == "draining":
		rep.fails = 0
		if prev == StateHealthy {
			rep.state = StateDraining
			if g.ring.Remove(url) {
				g.rebalances.Inc()
			}
			migrate = true
		}
	}
	cur := rep.state
	g.mu.Unlock()

	if cur != prev {
		g.tracer.Start("gateway.health").
			SetAttr("replica", url).
			SetAttr("from", prev.String()).
			SetAttr("to", cur.String()).
			Finish()
	}
	if migrate {
		g.migrateFrom(url)
	}
	if failover {
		g.failoverDead(url)
	}
}

func (g *Gateway) sweepSessions(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for id, s := range g.sessions {
		if s.mu.TryLock() {
			idle := now.Sub(s.lastUsed) > g.cfg.SessionTTL
			s.mu.Unlock()
			if idle {
				delete(g.sessions, id)
			}
		}
	}
}

// ReplicaStatus is one replica's row in health and stats responses.
type ReplicaStatus struct {
	URL      string `json:"url"`
	State    string `json:"state"`
	Inflight int64  `json:"inflight"`
	Routed   uint64 `json:"routed"`
}

func (g *Gateway) replicaStatuses() []ReplicaStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(g.replicas))
	for _, rep := range g.replicas {
		out = append(out, ReplicaStatus{
			URL:      rep.url,
			State:    rep.state.String(),
			Inflight: rep.inflight.Value(),
			Routed:   rep.routed.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// HealthResponse is the gateway's /healthz reply: 200 while at least one
// replica accepts new sessions, 503 otherwise.
type HealthResponse struct {
	Status   string          `json:"status"`
	Ready    int             `json:"ready"`
	Replicas []ReplicaStatus `json:"replicas"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	ready := g.ring.Len()
	g.mu.Unlock()
	resp := HealthResponse{Status: "ok", Ready: ready, Replicas: g.replicaStatuses()}
	code := http.StatusOK
	if ready == 0 {
		resp.Status = "down"
		code = http.StatusServiceUnavailable
	} else if len(resp.Replicas) > ready {
		resp.Status = "degraded"
	}
	writeJSON(w, code, resp)
}

// StatsSnapshot is the gateway's /v1/stats JSON.
type StatsSnapshot struct {
	Requests         uint64                `json:"requests"`
	Rerouted         uint64                `json:"rerouted"`
	Failovers        uint64                `json:"failovers"`
	SessionsMigrated uint64                `json:"sessions_migrated"`
	SessionsLost     uint64                `json:"sessions_lost"`
	EpochRestarts    uint64                `json:"epoch_restarts"`
	RingRebalances   uint64                `json:"ring_rebalances"`
	Upstream429      uint64                `json:"upstream_429"`
	UpstreamErrors   uint64                `json:"upstream_errors"`
	Sessions         int                   `json:"sessions"`
	RouteCounts      map[string]uint64     `json:"route_counts,omitempty"`
	Replicas         []ReplicaStatus       `json:"replicas"`
	UpstreamLatency  obs.HistogramSnapshot `json:"upstream_latency_seconds"`
}

// Stats returns the gateway's current counters.
func (g *Gateway) Stats() StatsSnapshot {
	g.mu.Lock()
	nsess := len(g.sessions)
	g.mu.Unlock()
	return StatsSnapshot{
		Requests:         g.requests.Value(),
		Rerouted:         g.rerouted.Value(),
		Failovers:        g.failovers.Value(),
		SessionsMigrated: g.migrated.Value(),
		SessionsLost:     g.lost.Value(),
		EpochRestarts:    g.epochRestarts.Value(),
		RingRebalances:   g.rebalances.Value(),
		Upstream429:      g.upstream429.Value(),
		UpstreamErrors:   g.upstreamErrors.Value(),
		Sessions:         nsess,
		RouteCounts:      g.routes.Values(),
		Replicas:         g.replicaStatuses(),
		UpstreamLatency:  g.upstreamSec.Snapshot(),
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats())
}

// ReloadFanoutResponse is the gateway's /v1/reload reply: the per-replica
// outcome of fanning the reload across the fleet. Down replicas are
// skipped (they will reload from disk when they come back).
type ReloadFanoutResponse struct {
	OK       bool                     `json:"ok"`
	Replicas map[string]ReloadOutcome `json:"replicas"`
}

// ReloadOutcome is one replica's reload result.
type ReloadOutcome struct {
	OK      bool   `json:"ok"`
	Status  int    `json:"status,omitempty"`
	Version int64  `json:"version,omitempty"`
	Models  int    `json:"models,omitempty"`
	Error   string `json:"error,omitempty"`
}

// handleReload fans POST /v1/reload out to every reachable replica. A
// fleet must converge on one model-set: any replica failing the reload
// flips OK false and the response carries 502 so operators see the split
// before it becomes a parity incident.
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"reading body: " + err.Error()})
		return
	}
	sp := g.tracer.Start("gateway.reload")
	resp := ReloadFanoutResponse{OK: true, Replicas: make(map[string]ReloadOutcome)}
	for _, url := range g.replicaURLs() {
		if g.stateOf(url) == StateDown {
			continue
		}
		rep := g.replicaFor(url)
		status, _, respBody, err := g.forward(rep, "/v1/reload", body, 0, 0)
		out := ReloadOutcome{OK: err == nil && status == http.StatusOK, Status: status}
		if err != nil {
			out.Error = err.Error()
		} else {
			var rr struct {
				Version int64  `json:"version"`
				Models  int    `json:"models"`
				Error   string `json:"error"`
			}
			json.Unmarshal(respBody, &rr) //nolint:errcheck // advisory detail
			out.Version, out.Models, out.Error = rr.Version, rr.Models, rr.Error
		}
		if !out.OK {
			resp.OK = false
		}
		resp.Replicas[url] = out
	}
	sp.SetInt("replicas", int64(len(resp.Replicas))).Finish()
	code := http.StatusOK
	if !resp.OK {
		code = http.StatusBadGateway
	}
	writeJSON(w, code, resp)
}

// DrainRequest is the gateway's POST /v1/drain body.
type DrainRequest struct {
	// Replica is the base URL of the replica to drain (must be one the
	// gateway fronts).
	Replica string `json:"replica"`
}

// DrainResponse reports a completed drain orchestration.
type DrainResponse struct {
	Replica  string `json:"replica"`
	Migrated int    `json:"migrated"`
	Lost     int    `json:"lost"`
	// Remaining is how many sessions the replica still held after
	// migration (its own count — sessions created outside this gateway).
	Remaining int `json:"remaining"`
}

// handleDrain orchestrates draining one replica: tell the replica to
// stop accepting new sessions, pull it from the ring, then migrate every
// session pinned to it onto the rest of the fleet. The call returns when
// migration is complete, so "drain through the gateway, then SIGTERM the
// process" is a zero-loss rollout step.
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST required"})
		return
	}
	var req DrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	rep := g.replicaFor(req.Replica)
	if rep == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown replica " + req.Replica})
		return
	}
	// Flip the replica itself first: readiness must withdraw before the
	// gateway starts moving state, so no new session lands mid-drain.
	status, _, respBody, err := g.forward(rep, "/v1/drain", nil, 0, 0)
	if err != nil || status != http.StatusOK {
		msg := "drain request failed"
		if err != nil {
			msg = err.Error()
		} else if len(respBody) > 0 {
			msg = string(respBody)
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{msg})
		return
	}
	g.markDraining(req.Replica) // idempotent if the data path beat us here
	migrated, lost := g.migrateFrom(req.Replica)

	remaining := 0
	if hresp, err := g.client.Get(req.Replica + "/healthz"); err == nil {
		var hr struct {
			Sessions int `json:"sessions"`
		}
		json.NewDecoder(hresp.Body).Decode(&hr) //nolint:errcheck // advisory
		hresp.Body.Close()
		remaining = hr.Sessions
	}
	writeJSON(w, http.StatusOK, DrainResponse{
		Replica:   req.Replica,
		Migrated:  migrated,
		Lost:      lost,
		Remaining: remaining,
	})
}
