package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/gshare"
	"branchnet/internal/predictor"
	"branchnet/internal/serve"
	"branchnet/internal/trace"
)

func fleetBaseline() predictor.Predictor { return gshare.New(12, 12) }

func fleetTrace(branches int) *trace.Trace {
	p := bench.ByName("mcf")
	return p.Generate(p.Inputs(bench.Test)[0], branches)
}

// fleetModels builds a fresh (but deterministic) model instance set per
// caller, so replicas never share mutable engine state.
func fleetModels(tr *trace.Trace, n int) []*branchnet.Attached {
	return branchnet.FromEngine(serve.SyntheticModels(tr, n, 7))
}

type fleet struct {
	servers []*serve.Server
	https   []*httptest.Server
	urls    []string
}

func newFleet(t *testing.T, n int, tr *trace.Trace, nmodels int, cfg serve.Config) *fleet {
	t.Helper()
	if cfg.NewBaseline == nil {
		cfg.NewBaseline = fleetBaseline
		cfg.BaselineName = "test-gshare"
	}
	f := &fleet{}
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		if nmodels > 0 {
			s.Registry().Swap(fleetModels(tr, nmodels), "test")
		}
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.https[i].Close() // idempotent; hard-kill tests close early
			f.servers[i].Drain()
		}
	})
	return f
}

func newGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

func postPredict(t *testing.T, baseURL, sessID string, recs []trace.Record) (*http.Response, []byte) {
	t.Helper()
	req := serve.PredictRequest{Session: sessID, Records: make([]serve.RecordJSON, len(recs))}
	for i, r := range recs {
		req.Records[i] = serve.RecordJSON{PC: r.PC, Taken: r.Taken}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

// TestGatewayParity: the headline property of the tier — sessions driven
// through the gateway produce predictions bit-identical to the in-process
// hybrid reference, i.e. the routing layer is invisible to correctness.
func TestGatewayParity(t *testing.T) {
	tr := fleetTrace(3000)
	f := newFleet(t, 3, tr, 3, serve.Config{})
	g, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: 50 * time.Millisecond})

	expected := serve.ExpectedPredictions(fleetBaseline, fleetModels(tr, 3), tr)
	rep, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:  gts.URL,
		Trace:    tr,
		Expected: expected,
		Sessions: 6,
		Chunk:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d parity mismatches through gateway", rep.Mismatches)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d client errors", rep.Errors)
	}
	if want := uint64(6 * len(tr.Records)); rep.Predictions != want {
		t.Fatalf("predictions %d, want %d", rep.Predictions, want)
	}
	st := g.Stats()
	if st.Requests == 0 || st.SessionsLost != 0 || st.SessionsMigrated != 0 {
		t.Fatalf("unexpected gateway stats for a healthy run: %+v", st)
	}
}

// TestGatewayAffinity: every request of one session lands on the same
// replica (the session's state lives there and nowhere else).
func TestGatewayAffinity(t *testing.T) {
	tr := fleetTrace(100)
	f := newFleet(t, 3, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour})

	for s := 0; s < 8; s++ {
		id := fmt.Sprintf("aff-%d", s)
		for off := 0; off < len(tr.Records); off += 20 {
			resp, body := postPredict(t, gts.URL, id, tr.Records[off:off+20])
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("session %s chunk %d: %d %s", id, off, resp.StatusCode, body)
			}
		}
	}
	// Each session exists on exactly one replica.
	total := 0
	for i, s := range f.servers {
		n := s.SessionCount()
		t.Logf("replica %d: %d sessions", i, n)
		total += n
	}
	if total != 8 {
		t.Fatalf("fleet holds %d sessions for 8 ids — affinity broken", total)
	}
}

// pinSessionTo creates a session through the gateway whose id
// consistent-hashes to urls[idx] (per a reference ring over all urls)
// and drives one chunk so the gateway records the pin, returning the id.
func pinSessionTo(t *testing.T, gatewayURL string, urls []string, idx int, tr *trace.Trace) string {
	t.Helper()
	ref := NewRing(0)
	for _, u := range urls {
		ref.Add(u)
	}
	for i := 0; ; i++ {
		id := fmt.Sprintf("pinned-%d", i)
		if ref.Lookup(id) != urls[idx] {
			continue
		}
		if resp, body := postPredict(t, gatewayURL, id, tr.Records[:16]); resp.StatusCode != http.StatusOK {
			t.Fatalf("pinning session %q: %d %s", id, resp.StatusCode, body)
		}
		return id
	}
}

// TestGatewayDrainMigratesWithParity is the tentpole end-to-end: a fleet
// of two replicas under cluster load, one drained mid-run through the
// gateway. Sessions must migrate (nonzero migrated, zero lost) and every
// prediction served — before, during, and after the migration — must
// match the in-process oracle bit-for-bit.
func TestGatewayDrainMigratesWithParity(t *testing.T) {
	tr := fleetTrace(2400)
	f := newFleet(t, 2, tr, 3, serve.Config{})
	g, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: 25 * time.Millisecond})

	// Guarantee the drained replica owns at least one session at drain
	// time: the cluster load's ids churn every pass, so whether any of
	// them is pinned to replica 0 at that instant is luck.
	pinned := pinSessionTo(t, gts.URL, f.urls, 0, tr)

	wls := serve.MakeClusterWorkloads(fleetBaseline, fleetModels(tr, 3), tr, 3)
	rep, err := serve.RunClusterLoad(serve.ClusterLoadConfig{
		BaseURL:   gts.URL,
		Workloads: wls,
		Sessions:  8,
		Chunk:     40,
		Duration:  1200 * time.Millisecond,
		KillAfter: 300 * time.Millisecond,
		Kill: func() {
			body, _ := json.Marshal(DrainRequest{Replica: f.urls[0]}) //nolint:errcheck
			resp, err := http.Post(gts.URL+"/v1/drain", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("drain request: %v", err)
				return
			}
			resp.Body.Close()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predictions == 0 {
		t.Fatal("no predictions served")
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d parity mismatches across the drain", rep.Mismatches)
	}
	if rep.SessionsMigrated == 0 {
		t.Fatal("drain migrated no sessions")
	}
	if rep.SessionsLost != 0 {
		t.Fatalf("graceful drain lost %d sessions", rep.SessionsLost)
	}
	if rep.RingRebalances == 0 {
		t.Fatal("drain did not rebalance the ring")
	}
	if n := f.servers[0].SessionCount(); n != 0 {
		t.Fatalf("drained replica still owns %d sessions", n)
	}
	if !f.servers[0].Draining() {
		t.Fatal("replica 0 is not draining")
	}
	// The pre-pinned session survived the move and keeps being served.
	if resp, body := postPredict(t, gts.URL, pinned, tr.Records[16:32]); resp.StatusCode != http.StatusOK {
		t.Fatalf("migrated session %q: %d %s", pinned, resp.StatusCode, body)
	}
	_ = g
}

// TestGatewayHardKillFailover: a replica dies without warning mid-run.
// Its sessions' state is gone — the gateway must detect the death, count
// the sessions lost, keep the rest of the fleet serving, and above all
// never serve a silently-forked session: every prediction that IS served
// still matches the oracle.
func TestGatewayHardKillFailover(t *testing.T) {
	tr := fleetTrace(2400)
	f := newFleet(t, 2, tr, 3, serve.Config{})
	g, gts := newGateway(t, Config{
		Replicas:       f.urls,
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
	})

	// Pin one session to the doomed replica before the storm: the cluster
	// load's own session ids churn every pass, so whether any of them is
	// pinned to replica 0 at the kill instant is luck — this one is not.
	doomed := pinSessionTo(t, gts.URL, f.urls, 0, tr)

	wls := serve.MakeClusterWorkloads(fleetBaseline, fleetModels(tr, 3), tr, 3)
	rep, err := serve.RunClusterLoad(serve.ClusterLoadConfig{
		BaseURL:   gts.URL,
		Workloads: wls,
		Sessions:  8,
		Chunk:     40,
		Duration:  1200 * time.Millisecond,
		KillAfter: 300 * time.Millisecond,
		Kill: func() {
			f.https[0].CloseClientConnections()
			f.https[0].Close()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predictions == 0 {
		t.Fatal("no predictions served")
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d parity mismatches — a lost session was silently resurrected", rep.Mismatches)
	}
	if rep.SessionsLost == 0 {
		t.Fatal("hard kill lost no sessions (kill too late, or routing never used replica 0?)")
	}
	if rep.Failovers == 0 {
		t.Fatal("no failover recorded")
	}
	// The pre-pinned session's history died with replica 0: its next use
	// must get the loud 410, never a quiet 200 from the survivor.
	if resp, _ := postPredict(t, gts.URL, doomed, tr.Records[16:32]); resp.StatusCode != http.StatusGone {
		t.Fatalf("request for lost session %q: %d, want 410", doomed, resp.StatusCode)
	}
	// The survivor kept the fleet alive.
	resp, err := http.Get(gts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	json.NewDecoder(resp.Body).Decode(&hr) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "degraded" || hr.Ready != 1 {
		t.Fatalf("gateway health after kill: %d %+v", resp.StatusCode, hr)
	}
	_ = g
}

// restartableReplica runs a serve.Server on a fixed address so a test
// can hard-kill it (SIGKILL-equivalent: listener and connections torn
// down, no drain) and bring a fresh process-equivalent — new epoch,
// empty session table — back on the SAME port.
type restartableReplica struct {
	t    *testing.T
	addr string
	srv  *serve.Server
	hs   *http.Server
}

func startReplicaOn(t *testing.T) *restartableReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &restartableReplica{t: t, addr: ln.Addr().String()}
	r.serveOn(ln)
	t.Cleanup(r.kill)
	return r
}

func (r *restartableReplica) serveOn(ln net.Listener) {
	r.srv = serve.New(serve.Config{NewBaseline: fleetBaseline, BaselineName: "test-gshare"})
	r.hs = &http.Server{Handler: r.srv.Handler()}
	go r.hs.Serve(ln) //nolint:errcheck // closed on kill
}

func (r *restartableReplica) kill() {
	r.hs.Close() //nolint:errcheck
	r.srv.Drain()
}

// restart hard-kills the server and binds a brand-new one (fresh epoch,
// no session state) to the same address — the restart blip a supervisor
// produces faster than any liveness check can notice.
func (r *restartableReplica) restart() {
	r.t.Helper()
	r.kill()
	var ln net.Listener
	var err error
	for i := 0; i < 200; i++ {
		if ln, err = net.Listen("tcp", r.addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		r.t.Fatalf("rebinding %s: %v", r.addr, err)
	}
	r.serveOn(ln)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGatewayEpochRestartDataPath closes the restart-blip resurrection
// window (DESIGN.md §11): a replica is hard-killed and restarted on the
// same port between health probes, so the gateway never sees it down.
// The restarted process happily answers 200 for a pinned session id —
// creating a fresh session whose history silently forks the stream. The
// session-epoch check on the data path must turn that 200 into a 410.
func TestGatewayEpochRestartDataPath(t *testing.T) {
	tr := fleetTrace(40)
	rep := startReplicaOn(t)
	g, gts := newGateway(t, Config{
		Replicas:       []string{"http://" + rep.addr},
		HealthInterval: time.Hour, // no probe will ever notice — only the data path can
		// Fresh connections per request: a pooled keep-alive conn to the
		// killed process would EOF first and obscure the thing under test.
		Client: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})

	if resp, body := postPredict(t, gts.URL, "victim", tr.Records[:10]); resp.StatusCode != http.StatusOK {
		t.Fatalf("pinning session: %d %s", resp.StatusCode, body)
	}
	epoch1 := rep.srv.Epoch()
	rep.restart()
	if rep.srv.Epoch() == epoch1 {
		t.Fatal("restarted server kept its epoch")
	}

	// Without epochs the restarted replica would answer this with a quiet
	// 200 for a session it has never seen.
	resp, body := postPredict(t, gts.URL, "victim", tr.Records[10:20])
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pinned session after same-port restart: %d %s, want 410", resp.StatusCode, body)
	}
	// The loss is reported exactly once; the id starts over afterwards.
	if resp, body := postPredict(t, gts.URL, "victim", tr.Records[:10]); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh use of id after the 410: %d %s", resp.StatusCode, body)
	}
	st := g.Stats()
	if st.EpochRestarts == 0 {
		t.Fatalf("no epoch restart recorded: %+v", st)
	}
	if st.SessionsLost == 0 {
		t.Fatalf("no session counted lost: %+v", st)
	}
}

// TestGatewayEpochRestartProbePath: the health probe — not a request —
// is first to see the restarted process. The probe's epoch comparison
// must expire the pinned sessions so their next request gets the 410
// without ever touching the restarted replica.
func TestGatewayEpochRestartProbePath(t *testing.T) {
	tr := fleetTrace(40)
	rep := startReplicaOn(t)
	url := "http://" + rep.addr
	g, gts := newGateway(t, Config{
		Replicas:       []string{url},
		HealthInterval: 10 * time.Millisecond,
		// Probes failing during the rebind gap must NOT mark the replica
		// down — the point of the test is the blip liveness cannot see.
		FailThreshold: 1 << 30,
	})
	waitUntil(t, "first probe to record the epoch", func() bool { return g.epochOf(url) != "" })

	if resp, body := postPredict(t, gts.URL, "victim", tr.Records[:10]); resp.StatusCode != http.StatusOK {
		t.Fatalf("pinning session: %d %s", resp.StatusCode, body)
	}
	rep.restart()
	waitUntil(t, "probe to detect the epoch change", func() bool { return g.Stats().EpochRestarts >= 1 })

	resp, body := postPredict(t, gts.URL, "victim", tr.Records[10:20])
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pinned session after probed restart: %d %s, want 410", resp.StatusCode, body)
	}
	if st := g.Stats(); st.SessionsLost == 0 {
		t.Fatalf("no session counted lost: %+v", st)
	}
}

// TestGateway429RelayCarriesRetryAfter: when a replica's backpressure
// outlasts the gateway's route budget, the 429 is relayed to the client
// with the Retry-After hints intact (satellite: clients see the same
// backoff contract with or without the gateway in between).
func TestGateway429RelayCarriesRetryAfter(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 1, tr, 0, serve.Config{MaxSessions: 1})
	_, gts := newGateway(t, Config{
		Replicas:       f.urls,
		HealthInterval: time.Hour,
		RouteBudget:    150 * time.Millisecond,
	})

	if resp, body := postPredict(t, gts.URL, "first", tr.Records[:10]); resp.StatusCode != http.StatusOK {
		t.Fatalf("first session: %d %s", resp.StatusCode, body)
	}
	resp, _ := postPredict(t, gts.URL, "second", tr.Records[:10])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("session over cap: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("relayed 429 lost its Retry-After header")
	}
	if resp.Header.Get(serve.RetryAfterMsHeader) == "" {
		t.Fatalf("relayed 429 lost its %s header", serve.RetryAfterMsHeader)
	}
}

// TestGatewayReroutesNewSessionsOffDrainingReplica: the data path, not
// just the health loop, discovers a draining replica — a new session
// refused with 503 "draining" is re-routed to a ready replica within the
// same request, so clients see no error at all.
func TestGatewayReroutesNewSessionsOffDrainingReplica(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 2, tr, 0, serve.Config{})
	g, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour})

	// Drain replica 0 behind the gateway's back.
	resp, err := http.Post(f.urls[0]+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Pick ids deterministically with a reference ring: 10 that hash to
	// the draining replica (must be re-routed) and 10 to the survivor.
	ref := NewRing(0)
	ref.Add(f.urls[0])
	ref.Add(f.urls[1])
	var ids []string
	onDraining := 0
	for i := 0; len(ids) < 20; i++ {
		id := fmt.Sprintf("rr-%d", i)
		if ref.Lookup(id) == f.urls[0] {
			if onDraining == 10 {
				continue
			}
			onDraining++
		} else if len(ids)-onDraining == 10 {
			continue
		}
		ids = append(ids, id)
	}

	for _, id := range ids {
		resp, body := postPredict(t, gts.URL, id, tr.Records[:10])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s: %d %s", id, resp.StatusCode, body)
		}
	}
	if f.servers[0].SessionCount() != 0 {
		t.Fatal("draining replica accepted a new session")
	}
	if f.servers[1].SessionCount() != 20 {
		t.Fatalf("survivor owns %d sessions, want 20", f.servers[1].SessionCount())
	}
	if got := g.Stats().Rerouted; got < 1 {
		t.Fatalf("rerouted %d, want >= 1 (10 ids hash to the draining replica)", got)
	}
}

// TestGatewayReloadFanout: one POST to the gateway converges the whole
// fleet on a model set, and a failing replica is reported per-URL.
func TestGatewayReloadFanout(t *testing.T) {
	tr := fleetTrace(400)
	f := newFleet(t, 2, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour})

	path := filepath.Join(t.TempDir(), "models.bnm")
	if err := engine.WriteModelsFile(path, serve.SyntheticModels(tr, 2, 7), nil); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.ReloadRequest{Paths: []string{path}}) //nolint:errcheck
	resp, err := http.Post(gts.URL+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var fr ReloadFanoutResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !fr.OK || len(fr.Replicas) != 2 {
		t.Fatalf("fan-out: %d %+v", resp.StatusCode, fr)
	}
	for url, out := range fr.Replicas {
		if !out.OK || out.Models != 2 {
			t.Fatalf("replica %s: %+v", url, out)
		}
	}

	// A bogus path must fail loudly, per replica, with a 502 overall.
	body, _ = json.Marshal(serve.ReloadRequest{Paths: []string{filepath.Join(t.TempDir(), "missing.bnm")}}) //nolint:errcheck
	resp, err = http.Post(gts.URL+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway || fr.OK {
		t.Fatalf("bad reload fan-out: %d %+v", resp.StatusCode, fr)
	}
}

// TestGatewayObservability: the gateway exposes its own registry and
// tracer — /metrics (Prometheus text with the per-replica inflight
// gauge), /v1/stats (JSON), /debug/spans.
func TestGatewayObservability(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 2, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour})
	if resp, _ := postPredict(t, gts.URL, "obs", tr.Records[:10]); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}

	resp, err := http.Get(gts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	for _, want := range []string{
		"gateway_requests_total 1",
		"gateway_replica_inflight{replica=",
		"gateway_routes_total{replica=",
		"gateway_upstream_seconds_bucket",
		"gateway_ready_replicas 2",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var st StatsSnapshot
	sresp, err := http.Get(gts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests != 1 || len(st.Replicas) != 2 || st.Sessions != 1 {
		t.Fatalf("stats snapshot: %+v", st)
	}

	dresp, err := http.Get(gts.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans: %d", dresp.StatusCode)
	}
}
