package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"branchnet/internal/obs"
)

// This file is the gateway's fleet observability plane. The health loop
// already visits every replica each HealthInterval; the plane piggybacks
// on that cadence to scrape each live replica's metrics registry
// (/v1/obs, the JSON sibling of /metrics) and span ring (/debug/spans),
// caching the results per replica. From those caches it serves:
//
//   - /v1/fleet/stats: cluster-merged counters, per-replica quantiles and
//     adaptation rollups, per-replica epoch/state, and SLO burn-rate
//     numbers computed by differencing successive scrapes;
//   - /v1/fleet/trace?id=<16-hex>: one distributed trace's span tree
//     assembled across the gateway and every replica, sorted by start
//     time, with flush spans pulled in through request-span links.
//
// Scrapes are best-effort: a replica that fails to answer keeps its
// previous cache (the health loop separately decides its fate), and a
// replica that never answered simply has no row.

// replicaScrape is one fleet-plane observation of a replica.
type replicaScrape struct {
	at    time.Time
	state ReplicaState
	epoch string
	obs   obs.RegistrySnapshot
	spans []*obs.Span
}

// scrapeFleet refreshes every non-down replica's observability cache and
// rotates the SLO comparison snapshot once it is at least SLOWindow old.
func (g *Gateway) scrapeFleet(now time.Time) {
	for _, url := range g.replicaURLs() {
		if g.stateOf(url) == StateDown {
			continue
		}
		sc := g.scrapeReplica(url, now)
		if sc == nil {
			continue
		}
		g.mu.Lock()
		rep := g.replicas[url]
		if rep != nil {
			sc.state = rep.state
			sc.epoch = rep.epoch
			switch {
			case rep.prevScrape == nil:
				// First sight: the window is empty until the next scrape
				// lands; gauges read 0, never garbage.
				rep.prevScrape = sc
				rep.nextPrev = sc
			case now.Sub(rep.nextPrev.at) >= g.cfg.SLOWindow:
				// The candidate aged past a full window: it becomes the
				// comparison point and this scrape the next candidate.
				rep.prevScrape = rep.nextPrev
				rep.nextPrev = sc
			}
			rep.scrape = sc
		}
		g.mu.Unlock()
	}
}

// scrapeReplica fetches one replica's registry snapshot and span ring.
// Any failure returns nil — the caller keeps the previous cache.
func (g *Gateway) scrapeReplica(url string, now time.Time) *replicaScrape {
	sc := &replicaScrape{at: now}
	resp, err := g.client.Get(url + "/v1/obs")
	if err != nil {
		return nil
	}
	err = json.NewDecoder(resp.Body).Decode(&sc.obs)
	resp.Body.Close()
	if err != nil {
		return nil
	}
	sresp, err := g.client.Get(url + "/debug/spans")
	if err != nil {
		return nil
	}
	var page struct {
		Spans []*obs.Span `json:"spans"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&page)
	sresp.Body.Close()
	if err != nil {
		return nil
	}
	sc.spans = page.Spans
	return sc
}

// AdaptRollup summarizes one replica's (or the cluster's) online
// adaptation state, read off the scraped adapt_* metrics.
type AdaptRollup struct {
	Tracked       int64  `json:"tracked"`
	Observations  uint64 `json:"observations"`
	Retrains      uint64 `json:"retrains"`
	Promotions    uint64 `json:"promotions"`
	Blocked       uint64 `json:"blocked"`
	Rollbacks     uint64 `json:"rollbacks"`
	Failures      uint64 `json:"failures"`
	RollbackDepth int64  `json:"rollback_depth"`
}

func (a *AdaptRollup) add(b AdaptRollup) {
	a.Tracked += b.Tracked
	a.Observations += b.Observations
	a.Retrains += b.Retrains
	a.Promotions += b.Promotions
	a.Blocked += b.Blocked
	a.Rollbacks += b.Rollbacks
	a.Failures += b.Failures
	a.RollbackDepth += b.RollbackDepth
}

func adaptRollupOf(snap obs.RegistrySnapshot) (AdaptRollup, bool) {
	r := AdaptRollup{
		Tracked:       snap.Gauges["adapt_tracked_branches"],
		Observations:  snap.Counters["adapt_observations_total"],
		Retrains:      snap.Counters["adapt_retrains_total"],
		Promotions:    snap.Counters["adapt_promotions_total"],
		Rollbacks:     snap.Counters["adapt_rollbacks_total"],
		Failures:      snap.Counters["adapt_retrain_failures_total"],
		RollbackDepth: snap.Gauges["adapt_rollback_depth"],
	}
	for _, n := range snap.Labeled["adapt_blocked_total"] {
		r.Blocked += n
	}
	// adapt_observations_total exists iff the adapter is attached; gauges
	// may legitimately be zero, so key presence decides "has adaptation".
	_, ok := snap.Counters["adapt_observations_total"]
	return r, ok
}

// FleetReplica is one replica's row in /v1/fleet/stats.
type FleetReplica struct {
	URL              string                `json:"url"`
	State            string                `json:"state"`
	Epoch            string                `json:"epoch,omitempty"`
	ScrapeAgeSeconds float64               `json:"scrape_age_seconds"`
	Requests         uint64                `json:"requests"`
	Predictions      uint64                `json:"predictions"`
	ModelPredictions uint64                `json:"model_predictions"`
	Rejected         uint64                `json:"rejected"`
	Expired          uint64                `json:"expired"`
	Errors           uint64                `json:"errors"`
	Sessions         int64                 `json:"sessions"`
	ModelSetVersion  int64                 `json:"model_set_version"`
	Latency          obs.HistogramSnapshot `json:"latency_seconds"`
	Adapt            *AdaptRollup          `json:"adapt,omitempty"`
	Spans            int                   `json:"spans"`
}

// ClusterRollup is the cross-replica merge in /v1/fleet/stats: counters
// are summed by name across every scraped replica (quantiles stay
// per-replica — summed histograms of different processes are reported
// under SLO instead, windowed).
type ClusterRollup struct {
	Replicas int               `json:"replicas"`
	Scraped  int               `json:"scraped"`
	Ready    int               `json:"ready"`
	Sessions int64             `json:"sessions"`
	Counters map[string]uint64 `json:"counters"`
	Adapt    *AdaptRollup      `json:"adapt,omitempty"`
}

// SLOStatus carries the burn-rate view computed from successive scrapes:
// everything is over the trailing window, not process lifetime, so a
// fleet that degraded five minutes ago and recovered reads healthy now.
type SLOStatus struct {
	WindowSeconds    float64 `json:"window_seconds"`
	Requests         uint64  `json:"requests"`
	Errors           uint64  `json:"errors"` // server errors + queue-deadline expiries
	ErrorRatioPPM    int64   `json:"error_ratio_ppm"`
	P99Seconds       float64 `json:"p99_seconds"`
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	// P99BurnPPM is windowed-p99 / target in parts-per-million: 1_000_000
	// means exactly on target, above it the fleet is burning budget.
	P99BurnPPM int64 `json:"p99_burn_ppm"`
}

// FleetStatsResponse is the /v1/fleet/stats reply.
type FleetStatsResponse struct {
	Cluster  ClusterRollup  `json:"cluster"`
	SLO      SLOStatus      `json:"slo"`
	Replicas []FleetReplica `json:"replicas"`
	Gateway  StatsSnapshot  `json:"gateway"`
}

// FleetStats assembles the fleet view from the scrape caches.
func (g *Gateway) FleetStats() FleetStatsResponse {
	gwStats := g.Stats() // takes g.mu internally; resolve before locking
	slo := g.sloStatus()

	g.mu.Lock()
	resp := FleetStatsResponse{
		Cluster: ClusterRollup{
			Replicas: len(g.replicas),
			Ready:    g.ring.Len(),
			Counters: make(map[string]uint64),
		},
		SLO:     slo,
		Gateway: gwStats,
	}
	now := time.Now()
	var clusterAdapt AdaptRollup
	anyAdapt := false
	for _, rep := range g.replicas {
		if rep.scrape == nil {
			continue
		}
		sc := rep.scrape
		resp.Cluster.Scraped++
		for name, v := range sc.obs.Counters {
			resp.Cluster.Counters[name] += v
		}
		resp.Cluster.Sessions += sc.obs.Gauges["branchnet_sessions"]
		row := FleetReplica{
			URL:              rep.url,
			State:            sc.state.String(),
			Epoch:            sc.epoch,
			ScrapeAgeSeconds: now.Sub(sc.at).Seconds(),
			Requests:         sc.obs.Counters["branchnet_requests_total"],
			Predictions:      sc.obs.Counters["branchnet_predictions_total"],
			ModelPredictions: sc.obs.Counters["branchnet_model_predictions_total"],
			Rejected:         sc.obs.Counters["branchnet_rejected_total"],
			Expired:          sc.obs.Counters["branchnet_expired_total"],
			Errors:           sc.obs.Counters["branchnet_errors_total"],
			Sessions:         sc.obs.Gauges["branchnet_sessions"],
			ModelSetVersion:  sc.obs.Gauges["branchnet_model_set_version"],
			Latency:          sc.obs.Histograms["branchnet_request_seconds"],
			Spans:            len(sc.spans),
		}
		if ar, ok := adaptRollupOf(sc.obs); ok {
			row.Adapt = &ar
			clusterAdapt.add(ar)
			anyAdapt = true
		}
		resp.Replicas = append(resp.Replicas, row)
	}
	g.mu.Unlock()
	if anyAdapt {
		resp.Cluster.Adapt = &clusterAdapt
	}
	sort.Slice(resp.Replicas, func(i, j int) bool { return resp.Replicas[i].URL < resp.Replicas[j].URL })
	return resp
}

// sloStatus differences each replica's current scrape against its
// SLOWindow-old one and merges the deltas into fleet-wide burn numbers.
func (g *Gateway) sloStatus() SLOStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	slo := SLOStatus{TargetP99Seconds: g.cfg.SLOTargetP99.Seconds()}
	var window obs.HistogramSnapshot
	for _, rep := range g.replicas {
		cur, prev := rep.scrape, rep.prevScrape
		if cur == nil || prev == nil || cur == prev {
			continue
		}
		if w := cur.at.Sub(prev.at).Seconds(); w > slo.WindowSeconds {
			slo.WindowSeconds = w
		}
		slo.Requests += counterDelta(cur.obs.Counters, prev.obs.Counters, "branchnet_requests_total")
		slo.Errors += counterDelta(cur.obs.Counters, prev.obs.Counters, "branchnet_errors_total")
		slo.Errors += counterDelta(cur.obs.Counters, prev.obs.Counters, "branchnet_expired_total")
		delta := cur.obs.Histograms["branchnet_request_seconds"].Sub(prev.obs.Histograms["branchnet_request_seconds"])
		window = mergeHist(window, delta)
	}
	if slo.Requests > 0 {
		slo.ErrorRatioPPM = int64(slo.Errors * 1_000_000 / slo.Requests)
	}
	slo.P99Seconds = window.Quantile(0.99)
	if slo.TargetP99Seconds > 0 && window.Count > 0 {
		slo.P99BurnPPM = int64(slo.P99Seconds / slo.TargetP99Seconds * 1_000_000)
	}
	return slo
}

// counterDelta is cur[name]-prev[name], clamped at 0 across restarts.
func counterDelta(cur, prev map[string]uint64, name string) uint64 {
	c, p := cur[name], prev[name]
	if p > c {
		return c
	}
	return c - p
}

// mergeHist sums two delta snapshots bucket-wise. Mismatched grids (a
// replica on a different build) keep the larger-count operand rather than
// fabricating a merged distribution.
func mergeHist(a, b obs.HistogramSnapshot) obs.HistogramSnapshot {
	if len(a.Buckets) == 0 {
		return b
	}
	if len(b.Buckets) != len(a.Buckets) {
		if b.Count > a.Count {
			return b
		}
		return a
	}
	out := obs.HistogramSnapshot{
		Bounds:  a.Bounds,
		Buckets: make([]uint64, len(a.Buckets)),
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
	}
	for i := range out.Buckets {
		out.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	return out
}

func (g *Gateway) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.FleetStats())
}

// TraceSpan is one span of an assembled cross-process trace, annotated
// with the process it was recorded in ("gateway" or the replica URL) —
// the disambiguator that makes per-process span/parent IDs meaningful in
// a merged tree.
type TraceSpan struct {
	Source string `json:"source"`
	*obs.Span
}

// FleetTraceResponse is the /v1/fleet/trace reply: the trace's spans from
// every process, sorted by start time.
type FleetTraceResponse struct {
	Trace string      `json:"trace"`
	Count int         `json:"count"`
	Spans []TraceSpan `json:"spans"`
}

// FleetTrace assembles one distributed trace from the gateway's own span
// ring and every replica's scraped ring. Flush spans that served traced
// requests are included through their links even though they carry no
// trace ID themselves (see obs.FilterTrace).
func (g *Gateway) FleetTrace(trace uint64) FleetTraceResponse {
	resp := FleetTraceResponse{Trace: obs.FormatTraceID(trace)}
	for _, sp := range obs.FilterTrace(g.tracer.Spans(0), trace) {
		resp.Spans = append(resp.Spans, TraceSpan{Source: "gateway", Span: sp})
	}
	g.mu.Lock()
	for _, rep := range g.replicas {
		if rep.scrape == nil {
			continue
		}
		for _, sp := range obs.FilterTrace(rep.scrape.spans, trace) {
			resp.Spans = append(resp.Spans, TraceSpan{Source: rep.url, Span: sp})
		}
	}
	g.mu.Unlock()
	sort.SliceStable(resp.Spans, func(i, j int) bool { return resp.Spans[i].Start < resp.Spans[j].Start })
	resp.Count = len(resp.Spans)
	return resp
}

// handleFleetTrace serves GET /v1/fleet/trace?id=<16-hex-trace>. Unknown
// traces answer 404 — spans may simply not have been scraped yet, so
// clients poll until the tree is as complete as they expect.
func (g *Gateway) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	trace, ok := obs.ParseTraceID(r.URL.Query().Get("id"))
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{"id must be 16 hex digits"})
		return
	}
	resp := g.FleetTrace(trace)
	if resp.Count == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{"no spans scraped for trace " + resp.Trace})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
