// Package gateway implements the branchnet fleet front-end: a
// consistent-hash router that pins every client session to one
// branchnet-serve replica (session affinity — each session's history ring
// and baseline live server-side), health-checks the fleet, fans reloads
// out, and migrates session state off draining or dying replicas.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica. 64 vnodes keeps
// the load spread within a few percent of even for small fleets while
// bounding the churn of a membership change to ~1/n of the keyspace.
const DefaultVNodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Only replicas that
// may accept NEW sessions are members — draining and down replicas are
// removed, so fresh lookups never land on them while existing sessions
// keep their pinned owner through the session table. Not safe for
// concurrent use; the Gateway guards it with its own mutex.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-64a of strings that differ
// only in a short numeric suffix — exactly what vnode labels ("url#0",
// "url#1", ...) and sequential session IDs look like — produces
// near-SEQUENTIAL hashes, so a node's 64 virtual points collapse into a
// few tight clusters and one replica can own almost the whole keyspace
// while sequential sessions all fall into a single band of it. Running
// the digest through a full-avalanche finalizer decorrelates the points
// and restores the near-even spread the vnode count is sized for.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts node's virtual points. It reports whether membership
// changed (false when the node was already present).
func (r *Ring) Add(node string) bool {
	if r.member[node] {
		return false
	}
	r.member[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return true
}

// Remove deletes node's virtual points, reporting whether it was a
// member. Keys that hashed to the removed node fall to their next
// clockwise point; all other keys keep their owner — the property that
// makes failover churn proportional to the lost replica's share only.
func (r *Ring) Remove(node string) bool {
	if !r.member[node] {
		return false
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Lookup returns the member owning key — the first virtual point at or
// clockwise of the key's hash — or "" when the ring is empty. A given
// (membership, key) pair always resolves identically, which is what lets
// any gateway instance route a brand-new session without coordination.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.member) }

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.member))
	for n := range r.member {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
