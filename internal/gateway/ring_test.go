package gateway

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%d", i)
	}
	return keys
}

// TestRingDeterministicAcrossInsertionOrder: routing must depend only on
// membership, never on the order replicas joined — any gateway instance
// (or restart) resolves a new session identically.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	a := NewRing(0)
	for _, n := range nodes {
		a.Add(n)
	}
	b := NewRing(0)
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for _, k := range ringKeys(5000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q: %q vs %q by insertion order", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingDistribution: with 64 vnodes, 4 replicas each own a reasonable
// share of a large keyspace — no starved or overloaded replica.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys (want 10%%-45%%)", n, share*100)
		}
	}
}

// TestRingDistributionSuffixOnlyURLs is the regression test for the
// sequential-hash collapse: raw FNV-64a of vnode labels for two URLs
// that differ only in the port ("http://127.0.0.1:37035" vs ":42129" —
// real httptest neighbors) produced near-sequential hashes, so one
// replica owned >80% of the keyspace and sequential session IDs — also
// hash-adjacent — ALL landed on it. With the mix64 finalizer both the
// points and the keys decorrelate; each of two replicas must own a sane
// share of a sequential-ID keyspace.
func TestRingDistributionSuffixOnlyURLs(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://127.0.0.1:37035", "http://127.0.0.1:42129"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	const total = 10000
	for i := 0; i < total; i++ {
		counts[r.Lookup(fmt.Sprintf("fs-live-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(total)
		if share < 0.25 || share > 0.75 {
			t.Errorf("node %s owns %.1f%% of sequential keys (want 25%%-75%%)", n, share*100)
		}
	}
}

// TestRingRemoveMovesOnlyLostShare: removing one replica must re-home
// only the keys it owned; everyone else's sessions stay put. This is the
// property that keeps a failover from churning the whole fleet.
func TestRingRemoveMovesOnlyLostShare(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	if !r.Remove(nodes[0]) {
		t.Fatal("remove of member returned false")
	}
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == nodes[0] {
			t.Fatalf("key %q still maps to the removed node", k)
		}
		if before[k] == nodes[0] {
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved from surviving %q to %q", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; distribution test should have caught this")
	}
}

// TestRingMembership: Add/Remove idempotence and empty-ring lookups.
func TestRingMembership(t *testing.T) {
	r := NewRing(8)
	if r.Lookup("x") != "" {
		t.Fatal("empty ring lookup returned a node")
	}
	if !r.Add("n1") || r.Add("n1") {
		t.Fatal("Add idempotence broken")
	}
	if got := r.Lookup("x"); got != "n1" {
		t.Fatalf("single-node ring routed to %q", got)
	}
	if !r.Remove("n1") || r.Remove("n1") {
		t.Fatal("Remove idempotence broken")
	}
	if r.Len() != 0 || r.Lookup("x") != "" {
		t.Fatal("ring not empty after removal")
	}
}
