package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"branchnet/internal/obs"
	"branchnet/internal/serve"
)

// TestGatewayBackpressure429EchoesRealBackoff is the regression test for
// the hardcoded "Retry-After: 1": when a replica's standing backoff
// window exceeds the route budget, the 429 must echo the replica's
// ACTUAL remaining window — in whole seconds and in milliseconds — not a
// fixed hint that synchronizes every client's retry.
func TestGatewayBackpressure429EchoesRealBackoff(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 1, tr, 0, serve.Config{})
	g, gts := newGateway(t, Config{
		Replicas:       f.urls,
		HealthInterval: time.Hour,
		RouteBudget:    100 * time.Millisecond,
	})

	const window = 2500 * time.Millisecond
	g.replicaFor(f.urls[0]).setBackoff(window)

	resp, _ := postPredict(t, gts.URL, "bp-echo", tr.Records[:10])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil {
		t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	ms, err := strconv.ParseInt(resp.Header.Get(serve.RetryAfterMsHeader), 10, 64)
	if err != nil {
		t.Fatalf("%s %q: %v", serve.RetryAfterMsHeader, resp.Header.Get(serve.RetryAfterMsHeader), err)
	}
	// The remaining window decays between setBackoff and the check, so
	// assert a band: well above the old hardcoded 1s/5ms, at most the set
	// window.
	if secs != 3 {
		t.Errorf("Retry-After = %ds, want 3 (ceil of ~2.5s remaining)", secs)
	}
	if ms <= 2000 || ms > int64(window/time.Millisecond) {
		t.Errorf("%s = %dms, want in (2000, 2500]", serve.RetryAfterMsHeader, ms)
	}
}

// TestGatewayTracePropagation covers the cross-process tentpole in one
// process tree: a client-minted trace rides the Branchnet-Trace header
// through the gateway to a replica, the response header names the
// gateway's span, and /v1/fleet/trace assembles the full tree — route
// span, replica request span, and the batch-flush span it links to.
func TestGatewayTracePropagation(t *testing.T) {
	tr := fleetTrace(400)
	f := newFleet(t, 2, tr, 3, serve.Config{})
	_, gts := newGateway(t, Config{
		Replicas:       f.urls,
		HealthInterval: 25 * time.Millisecond, // also the fleet scrape cadence
	})

	traceID := obs.NewTraceID()
	req := serve.PredictRequest{Session: "traced", Records: make([]serve.RecordJSON, 64)}
	for i, r := range tr.Records[:64] {
		req.Records[i] = serve.RecordJSON{PC: r.PC, Taken: r.Taken}
	}
	body, _ := json.Marshal(req) //nolint:errcheck
	hreq, _ := http.NewRequest(http.MethodPost, gts.URL+"/v1/predict", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(traceID, 0))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced predict: %d", resp.StatusCode)
	}
	gotTrace, gotSpan, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok || gotTrace != traceID || gotSpan == 0 {
		t.Fatalf("response trace header = %q, want trace %s with a nonzero span",
			resp.Header.Get(obs.TraceHeader), obs.FormatTraceID(traceID))
	}

	var lastTree FleetTraceResponse
	waitUntil(t, "trace assembled across processes", func() bool {
		r, err := http.Get(gts.URL + "/v1/fleet/trace?id=" + obs.FormatTraceID(traceID))
		if err != nil || r.StatusCode != http.StatusOK {
			if r != nil {
				r.Body.Close()
			}
			return false
		}
		defer r.Body.Close()
		lastTree = FleetTraceResponse{}
		if json.NewDecoder(r.Body).Decode(&lastTree) != nil {
			return false
		}
		var route, request bool
		var flushLink uint64
		for _, sp := range lastTree.Spans {
			switch {
			case sp.Source == "gateway" && sp.Name == "gateway.route":
				route = true
			case sp.Source != "gateway" && sp.Name == "serve.request":
				request = true
				flushLink = sp.Link
			}
		}
		if !route || !request || flushLink == 0 {
			return false
		}
		for _, sp := range lastTree.Spans {
			if sp.Name == "serve.flush" && sp.ID == flushLink {
				return true
			}
		}
		return false
	})
	// Assembled order is by start time: the gateway's route span opened
	// before the replica's request span.
	var order []string
	for _, sp := range lastTree.Spans {
		if sp.Name == "gateway.route" || sp.Name == "serve.request" {
			order = append(order, sp.Name)
		}
	}
	if len(order) < 2 || order[0] != "gateway.route" {
		t.Fatalf("span order by start time = %v, want gateway.route first", order)
	}
}

// TestGatewayUntracedRequestGetsNoHeader: without sampling and without a
// client header, the trace plane stays completely out of the response.
func TestGatewayUntracedRequestGetsNoHeader(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 1, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour})

	resp, _ := postPredict(t, gts.URL, "untraced", tr.Records[:10])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	if h := resp.Header.Get(obs.TraceHeader); h != "" {
		t.Fatalf("untraced response carries %s: %q", obs.TraceHeader, h)
	}
}

// TestGatewayTraceSampleMints: with TraceSample=1 every unheadered
// request is minted a trace, visible as a response header.
func TestGatewayTraceSampleMints(t *testing.T) {
	tr := fleetTrace(40)
	f := newFleet(t, 1, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: time.Hour, TraceSample: 1})

	resp, _ := postPredict(t, gts.URL, "minted", tr.Records[:10])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	if trace, _, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader)); !ok || trace == 0 {
		t.Fatalf("sampled response trace header = %q, want a minted trace", resp.Header.Get(obs.TraceHeader))
	}
}

// TestGatewayFleetStatsMergesReplicas: the fleet plane scrapes every
// replica on the health cadence and /v1/fleet/stats serves the merged
// view — cluster counters equal to the per-replica sum, per-replica
// latency snapshots, and live epochs.
func TestGatewayFleetStatsMergesReplicas(t *testing.T) {
	tr := fleetTrace(400)
	f := newFleet(t, 2, tr, 0, serve.Config{})
	_, gts := newGateway(t, Config{Replicas: f.urls, HealthInterval: 25 * time.Millisecond})

	// Spread sessions until both replicas served at least one request.
	for i := 0; i < 16; i++ {
		sess := "fs-" + strconv.Itoa(i)
		if resp, body := postPredict(t, gts.URL, sess, tr.Records[:10]); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: %d %s", sess, resp.StatusCode, body)
		}
	}

	var fs FleetStatsResponse
	live := 0
	waitUntil(t, "fleet stats merged", func() bool {
		// Keep traffic flowing on FRESH sessions: the SLO window only sees
		// requests that land between two scrapes, and a fresh session per
		// poll guarantees both replicas eventually serve even when the
		// ring hashes every initial session onto one of them.
		live++
		postPredict(t, gts.URL, "fs-live-"+strconv.Itoa(live), tr.Records[:10])
		r, err := http.Get(gts.URL + "/v1/fleet/stats")
		if err != nil || r.StatusCode != http.StatusOK {
			if r != nil {
				r.Body.Close()
			}
			return false
		}
		defer r.Body.Close()
		fs = FleetStatsResponse{}
		if json.NewDecoder(r.Body).Decode(&fs) != nil {
			return false
		}
		if fs.Cluster.Scraped != 2 {
			return false
		}
		var sum uint64
		served := 0
		for _, rep := range fs.Replicas {
			sum += rep.Requests
			if rep.Requests > 0 {
				served++
			}
		}
		return served == 2 && fs.Cluster.Counters["branchnet_requests_total"] == sum && sum >= 16 &&
			fs.SLO.WindowSeconds > 0
	})

	for _, rep := range fs.Replicas {
		if rep.State != "healthy" {
			t.Errorf("replica %s state = %q, want healthy", rep.URL, rep.State)
		}
		if rep.Epoch == "" {
			t.Errorf("replica %s has no epoch", rep.URL)
		}
		if rep.Requests > 0 && rep.Latency.Count == 0 {
			t.Errorf("replica %s served %d requests but latency snapshot is empty", rep.URL, rep.Requests)
		}
	}
	if fs.SLO.WindowSeconds <= 0 {
		t.Errorf("slo window = %v, want positive", fs.SLO.WindowSeconds)
	}
}

// TestGatewaySLOGauges: the burn-rate gauges appear on /metrics and the
// error ratio stays zero on an all-success run.
func TestGatewaySLOGauges(t *testing.T) {
	tr := fleetTrace(400)
	f := newFleet(t, 1, tr, 0, serve.Config{})
	g, gts := newGateway(t, Config{
		Replicas:       f.urls,
		HealthInterval: 20 * time.Millisecond,
		SLOWindow:      50 * time.Millisecond,
	})

	waitUntil(t, "slo window has data", func() bool {
		// Requests only count toward the window when they land between two
		// scrapes, so keep sending while polling.
		if resp, _ := postPredict(t, gts.URL, "slo", tr.Records[:10]); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d", resp.StatusCode)
		}
		return g.sloStatus().Requests > 0
	})
	slo := g.sloStatus()
	if slo.ErrorRatioPPM != 0 {
		t.Errorf("error ratio = %d ppm on an all-success run", slo.ErrorRatioPPM)
	}
	if slo.P99Seconds <= 0 {
		t.Errorf("windowed p99 = %g, want positive", slo.P99Seconds)
	}

	resp, err := http.Get(gts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	for _, name := range []string{"gateway_slo_error_ratio_ppm", "gateway_slo_p99_burn_ppm"} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
