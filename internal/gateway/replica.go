package gateway

import (
	"sync/atomic"
	"time"

	"branchnet/internal/obs"
)

// ReplicaState is a replica's routing state as the gateway sees it.
type ReplicaState int32

const (
	// StateHealthy replicas are ring members: they receive new sessions
	// and keep serving their pinned ones.
	StateHealthy ReplicaState = iota
	// StateDraining replicas answered /healthz with 503 "draining" (or
	// were drained through the gateway). They are out of the ring — no new
	// sessions — but still serve and export their existing sessions while
	// the gateway migrates them off.
	StateDraining
	// StateDown replicas failed FailThreshold consecutive probes or
	// connections. Their sessions' state is unreachable; the gateway
	// counts them lost and re-pins the ids on next use.
	StateDown
)

func (s ReplicaState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// replica is the gateway's view of one branchnet-serve instance. state,
// fails, and epoch are guarded by Gateway.mu; backoffUntil is atomic
// because the data path reads and writes it without the gateway lock.
type replica struct {
	url   string
	state ReplicaState
	fails int // consecutive probe/connection failures
	// epoch is the replica process's session epoch, from its /healthz and
	// predict responses. A change means the process restarted — even if it
	// came back on the same address fast enough that no probe or
	// connection ever failed — so every session pinned before the change
	// lost its server-side state.
	epoch string

	// backoffUntil (unix nanos) is set from the replica's own Retry-After
	// hint on a 429 — per-replica admission backpressure, honored before
	// the next forward to this replica.
	backoffUntil atomic.Int64

	// scrape is the latest fleet-plane observability scrape (/v1/obs +
	// /debug/spans); prevScrape is the older one the SLO burn-rate gauges
	// difference against, and nextPrev the rotation candidate that will
	// replace it — the two-bucket scheme that keeps the SLO window within
	// [SLOWindow, 2*SLOWindow) instead of collapsing to one scrape tick.
	// All guarded by Gateway.mu; nil until the first successful scrape.
	scrape, prevScrape, nextPrev *replicaScrape

	inflight *obs.Gauge   // gateway_replica_inflight{replica=...}
	routed   *obs.Counter // gateway_routes_total{replica=...}
}

// backoff returns how much of the replica's Retry-After window remains.
func (rep *replica) backoff() time.Duration {
	until := rep.backoffUntil.Load()
	if until == 0 {
		return 0
	}
	if d := time.Until(time.Unix(0, until)); d > 0 {
		return d
	}
	return 0
}

func (rep *replica) setBackoff(d time.Duration) {
	if d <= 0 {
		return
	}
	rep.backoffUntil.Store(time.Now().Add(d).UnixNano())
}
