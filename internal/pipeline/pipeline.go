// Package pipeline estimates the IPC impact of branch prediction with a
// two-tier-frontend cycle model, standing in for the paper's Scarab
// simulations (§VI-A): "We use a 4KB gshare predictor as the single-cycle
// lightweight predictor and TAGE-SC-L and BranchNet as 4-cycle late
// predictors. If the prediction of the late predictor disagrees with the
// early predictor, we flush the frontend and re-fetch."
//
// The model charges three kinds of cycles:
//
//   - base execution: instructions / fetch width, inflated by a
//     memory/dependence CPI adder (the paper's processor is 6-wide with a
//     512-entry ROB, 2MB LLC and DDR4 memory — far from ideal CPI);
//   - frontend redirects: the late predictor corrects the early one
//     (late-predictor latency cycles of re-fetch bubble);
//   - full mispredictions: pipeline flush (frontend depth) plus the
//     branch's resolution latency in the backend.
//
// Absolute IPC is out of scope; the model preserves the relative shape —
// avoided mispredictions buy back flush cycles, damped by the base CPI.
package pipeline

import (
	"branchnet/internal/predictor"
	"branchnet/internal/trace"
)

// Config sizes the modeled processor (defaults mirror §VI-A).
type Config struct {
	FetchWidth    int     // instructions fetched/retired per cycle
	FrontendDepth int     // stages refilled after a full flush
	LateLatency   int     // late-predictor latency (frontend redirect cost)
	ResolveCycles int     // average backend resolution delay of a branch
	MemoryCPI     float64 // additive CPI for memory/dependence stalls
}

// DefaultConfig models the paper's high-performance core: 6-wide fetch,
// 10-stage frontend, 4-cycle late predictors.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    6,
		FrontendDepth: 10,
		LateLatency:   4,
		ResolveCycles: 14,
		MemoryCPI:     0.25,
	}
}

// Result summarizes a simulation.
type Result struct {
	Instructions uint64
	Cycles       float64
	Mispredicts  uint64
	Redirects    uint64 // early/late disagreements that were not mispredicts
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}

// MPKI returns mispredictions per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Mispredicts) * 1000 / float64(r.Instructions)
}

// Simulate drives the two-tier frontend over a trace. early is the
// single-cycle predictor (a 4KB gshare in the paper), late the
// heavy-weight predictor under evaluation (TAGE-SC-L or a BranchNet
// hybrid). Both are trained online as the trace retires.
func Simulate(cfg Config, early, late predictor.Predictor, tr *trace.Trace) Result {
	res := Result{Instructions: tr.Instructions()}
	cycles := float64(res.Instructions) * (1/float64(cfg.FetchWidth) + cfg.MemoryCPI)
	for i := range tr.Records {
		r := &tr.Records[i]
		ep := early.Predict(r.PC)
		lp := late.Predict(r.PC)
		early.Update(r.PC, r.Taken)
		late.Update(r.PC, r.Taken)
		if lp != r.Taken {
			// Full pipeline flush at resolution.
			res.Mispredicts++
			cycles += float64(cfg.FrontendDepth + cfg.ResolveCycles)
		} else if ep != lp {
			// Late predictor corrects the early one: frontend refetch.
			res.Redirects++
			cycles += float64(cfg.LateLatency)
		}
	}
	res.Cycles = cycles
	return res
}
