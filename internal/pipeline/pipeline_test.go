package pipeline

import (
	"math"
	"testing"

	"branchnet/internal/bench"
	"branchnet/internal/gshare"
	"branchnet/internal/predictor"
	"branchnet/internal/tage"
	"branchnet/internal/trace"
)

// fixed is a predictor that always answers the same direction.
type fixed bool

func (f fixed) Predict(uint64) bool { return bool(f) }
func (fixed) Update(uint64, bool)   {}
func (fixed) Name() string          { return "fixed" }
func (fixed) Bits() int             { return 0 }

func twoBranchTrace(n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{PC: 0x10, Taken: true, Gap: 11})
	}
	return tr
}

func TestCycleAccounting(t *testing.T) {
	cfg := Config{FetchWidth: 4, FrontendDepth: 10, LateLatency: 4, ResolveCycles: 10, MemoryCPI: 0}
	tr := twoBranchTrace(100) // 1200 instructions, all taken

	// Perfect late, perfect early: base cycles only.
	r := Simulate(cfg, fixed(true), fixed(true), tr)
	if want := float64(r.Instructions) / 4; r.Cycles != want {
		t.Fatalf("cycles = %v, want %v", r.Cycles, want)
	}
	if r.Mispredicts != 0 || r.Redirects != 0 {
		t.Fatalf("unexpected events: %+v", r)
	}

	// Early always wrong, late right: one redirect per branch.
	r = Simulate(cfg, fixed(false), fixed(true), tr)
	if r.Redirects != 100 || r.Mispredicts != 0 {
		t.Fatalf("redirects = %d, mispredicts = %d", r.Redirects, r.Mispredicts)
	}
	if want := float64(r.Instructions)/4 + 100*4; r.Cycles != want {
		t.Fatalf("cycles = %v, want %v", r.Cycles, want)
	}

	// Late always wrong: full flush per branch, regardless of early.
	r = Simulate(cfg, fixed(true), fixed(false), tr)
	if r.Mispredicts != 100 || r.Redirects != 0 {
		t.Fatalf("mispredicts = %d, redirects = %d", r.Mispredicts, r.Redirects)
	}
	if want := float64(r.Instructions)/4 + 100*20; r.Cycles != want {
		t.Fatalf("cycles = %v, want %v", r.Cycles, want)
	}
}

func TestIPCImprovesWithBetterPredictor(t *testing.T) {
	cfg := DefaultConfig()
	prog := bench.Leela()
	tr := prog.Generate(prog.Inputs(bench.Test)[0], 60000)

	worse := Simulate(cfg, gshare.Default4KB(), gshare.New(12, 10), tr)
	better := Simulate(cfg, gshare.Default4KB(), tage.New(tage.TAGESCL64KB(), 1), tr)
	if better.IPC() <= worse.IPC() {
		t.Fatalf("TAGE IPC (%.3f) should beat small-gshare IPC (%.3f)",
			better.IPC(), worse.IPC())
	}
	if better.MPKI() >= worse.MPKI() {
		t.Fatal("MPKI ordering inverted")
	}
}

func TestIPCPlausible(t *testing.T) {
	cfg := DefaultConfig()
	prog := bench.Exchange2()
	tr := prog.Generate(prog.Inputs(bench.Test)[0], 40000)
	r := Simulate(cfg, gshare.Default4KB(), tage.New(tage.TAGESCL64KB(), 1), tr)
	if ipc := r.IPC(); ipc < 0.5 || ipc > 6 {
		t.Fatalf("IPC = %.3f implausible", ipc)
	}
	// Sanity: MPKI from the pipeline must match a plain evaluation.
	plain := predictor.Evaluate(tage.New(tage.TAGESCL64KB(), 1), tr)
	if math.Abs(r.MPKI()-plain.MPKI(tr)) > 1e-9 {
		t.Fatalf("pipeline MPKI %.4f != evaluation MPKI %.4f", r.MPKI(), plain.MPKI(tr))
	}
}
