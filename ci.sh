#!/bin/sh
# CI gate: formatting, vet, build, the short test suite under the race
# detector, and an end-to-end smoke test of the serving stack.
# The experiment runner and the serving daemon both fan work out across
# goroutines (worker pools, single-flight caches, the micro-batcher), so
# -race is mandatory on every PR; -short skips the long training
# experiments while still covering the cache, extraction, and attach-filter
# logic they rely on.
set -eux

# gofmt gate: -l lists non-conforming files; any output fails the build.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -short -race ./...

# Sharded-trainer determinism under the race detector: parallel training
# must stay bit-identical to serial, and the fused training paths
# bit-identical to the layered reference.
go test -race -run 'TestParallelTrainBitIdentical|TestShardedStep|TestFused|TestEmbConv' ./internal/branchnet

# Crash-safety gate: the checkpoint chaos suite (kill matrix, torn
# tails, bit flips — reduced sweeps under -short above, full sweeps and
# the serve reload regression here) plus a short fuzz smoke of both
# untrusted read paths, so the "no torn or corrupt snapshot is ever
# accepted" invariant is re-proven on every PR.
go test -race ./internal/checkpoint ./internal/faults ./internal/serve
go test -fuzz FuzzReadCheckpoint -fuzztime 10s ./internal/checkpoint
go test -fuzz FuzzReadModels -fuzztime 10s ./internal/engine
go test -fuzz FuzzDecodeSessionState -fuzztime 10s ./internal/serve
go test -fuzz FuzzReadTrace -fuzztime 10s ./internal/trace
go test -fuzz FuzzStoreIndex -fuzztime 10s ./internal/branchnet
go test -fuzz FuzzParseTraceHeader -fuzztime 10s ./internal/obs

# Online-adaptation gate: the full adapt suite under the race detector
# (promotion hot-swaps race the prediction path by design — the rollback
# pressure test and the phase-shift e2e both need an adversarial
# scheduler), plus fuzz smokes of its two untrusted on-disk artifacts,
# the reservoir segments and the promotion journal.
go test -race -count=1 ./internal/adapt
go test -fuzz FuzzAdaptReservoir -fuzztime 10s ./internal/adapt
go test -fuzz FuzzAdaptJournal -fuzztime 10s ./internal/adapt

# Streaming-pipeline gate: the stream-extracted example store and the
# windowed-shuffle trainer must stay bit-identical to the in-memory
# oracle (dataset pins, worker-count independence, fixed-seed train
# comparison, checkpoint/resume on the streamed path).
go test -race -count=1 -run 'TestExtractStream|TestStreamDataset|TestStoreRejects|TestTrainStream' ./internal/branchnet

# Bit-sliced engine gate: the packed fast path must stay bit-identical to
# the scalar oracle — property tests under the race detector (packing is
# lazy and shared across serving goroutines) plus a short fuzz over model
# shape x history x sliding phase, and the quantization boundary
# regressions that feed the engine its thresholds and pool codes.
go test -race -count=1 -run 'TestPacked|TestPredictBatch|TestGramHash' ./internal/engine
go test -fuzz FuzzPredictPacked -fuzztime 10s ./internal/engine
go test -count=1 -run 'TestFoldThresholdBoundary|TestCalibrationMatchesRuntimeWindows|TestTernarize' ./internal/branchnet

# Observability gates: the obscheck hygiene test (no raw log.Print*
# outside internal/obs — CLIs log through slog) and the overhead gates
# (instrumented inference/training must stay within noise of the
# uninstrumented cost; the hooks are one atomic pointer load when
# disabled, one extra atomic add when enabled). The TestObsOverhead
# pattern also matches TestObsOverheadPredictBatchTraced — the gate that
# a fully traced batch (span + exemplar stamp) stays within 1.25x of the
# bare uninstrumented cost.
go test -run TestNoRawLogPrintOutsideObs -count=1 ./internal/obs/obscheck
go test -run 'TestObsOverhead|TestObsHooks' -count=1 ./internal/branchnet

# Benchmark smoke gate: one iteration of every kernel, train-step, and
# extraction benchmark, so the perf harness can't silently rot.
# Throughput numbers from -benchtime=1x are meaningless; this only
# checks they still run.
go test -run xxx -bench . -benchtime 1x ./internal/nn ./internal/branchnet

# Serving smoke test: build deterministic synthetic models from a trace,
# serve them, replay the trace through HTTP for ~2s from several sessions,
# and require non-zero predictions, bit-exact parity with the in-process
# hybrid evaluation (loadgen exits non-zero otherwise), and a clean
# SIGTERM drain of the daemon.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke" ./cmd/branchnet-serve ./cmd/branchnet-loadgen
"$smoke/branchnet-loadgen" -bench mcf -branches 6000 -synth 3 \
    -write-synth "$smoke/models.bnm"
"$smoke/branchnet-serve" -addr 127.0.0.1:0 -addr-file "$smoke/addr" \
    -models "$smoke/models.bnm" &
serve_pid=$!
"$smoke/branchnet-loadgen" -addr-file "$smoke/addr" -wait 10s \
    -bench mcf -branches 6000 -models "$smoke/models.bnm" \
    -sessions 6 -duration 2s -json "$smoke/BENCH_serve.json" \
    -metrics-out "$smoke/loadgen-metrics.json"
# The client-side -metrics-out snapshot must exist and be non-empty.
test -s "$smoke/loadgen-metrics.json"
kill -TERM "$serve_pid"
wait "$serve_pid"

# Cluster smoke test: two replicas behind the consistent-hash gateway,
# Zipf-skewed cluster load, and one replica SIGTERMed mid-run. The
# drain-grace replica flips to draining, the gateway migrates its
# sessions to the survivor, and the killed replica exits once it owns
# nothing. The loadgen exits non-zero on any parity mismatch or if the
# gateway reports zero migrated sessions (-expect-migrated), so the
# "failover is invisible to correctness" invariant is CI-enforced.
go build -o "$smoke" ./cmd/branchnet-gateway
"$smoke/branchnet-serve" -addr 127.0.0.1:0 -addr-file "$smoke/r1.addr" \
    -models "$smoke/models.bnm" -drain-grace 10s &
r1_pid=$!
"$smoke/branchnet-serve" -addr 127.0.0.1:0 -addr-file "$smoke/r2.addr" \
    -models "$smoke/models.bnm" -drain-grace 10s &
r2_pid=$!
"$smoke/branchnet-gateway" -addr 127.0.0.1:0 -addr-file "$smoke/gw.addr" \
    -replicas "@$smoke/r1.addr,@$smoke/r2.addr" -health-interval 100ms &
gw_pid=$!
# Fleet observability smoke (no kill — the fleet must be whole): the
# loadgen mints a Branchnet-Trace on every 20th request, then asserts
# that /v1/fleet/stats merges BOTH replicas (cluster counters equal to
# the per-replica sum) and that one of its sampled traces assembles a
# full cross-process tree from /v1/fleet/trace — the gateway route span,
# the replica request span, and the batch-flush span it links to.
"$smoke/branchnet-loadgen" -addr-file "$smoke/gw.addr" -wait 10s \
    -bench mcf -branches 6000 -models "$smoke/models.bnm" \
    -cluster -sessions 8 -duration 2s \
    -trace-sample 20 -expect-trace \
    -json "$smoke/BENCH_gateway_trace.json"
# Failover run against the same fleet: one replica SIGTERMed mid-run.
"$smoke/branchnet-loadgen" -addr-file "$smoke/gw.addr" -wait 10s \
    -bench mcf -branches 6000 -models "$smoke/models.bnm" \
    -cluster -sessions 8 -duration 2s \
    -kill-after 700ms -kill-pid "$r1_pid" -expect-migrated \
    -json "$smoke/BENCH_gateway.json"
wait "$r1_pid" # drained replica exits on its own once it owns no sessions
# SIGINT skips the survivor's drain-grace (no gateway left to migrate to).
kill -TERM "$gw_pid"
kill -INT "$r2_pid"
wait "$gw_pid" "$r2_pid"

# Adaptation smoke test: an adaptation-enabled replica driven through
# the noisy-history phase shift. The loadgen exits non-zero unless each
# phase produces a gated promotion (z >= 3; noise-only drift stays
# blocked), the final version-pinned parity pass is bit-exact, and the
# retrained model beats the frozen phase-A control on the shifted branch.
"$smoke/branchnet-serve" -addr 127.0.0.1:0 -addr-file "$smoke/adapt.addr" \
    -baseline gshare -adapt -adapt-sync -adapt-dir "$smoke/adapt-state" \
    -adapt-sustain 128 -adapt-min-examples 384 -adapt-cooldown 512 &
adapt_pid=$!
"$smoke/branchnet-loadgen" -addr-file "$smoke/adapt.addr" -wait 10s \
    -phase-shift -baseline gshare -branches 16000 \
    -json "$smoke/BENCH_adapt.json"
kill -TERM "$adapt_pid"
wait "$adapt_pid"

# Bounded-memory streaming smoke: stream a 100M-branch trace to disk,
# stream-extract it into a sharded example store, and train two branches
# from the store — all under a 256 MiB GOMEMLIMIT. The in-memory path
# would need ~2.4 GB just for the decoded []Record, so completing under
# this limit proves the whole tracegen -> ExtractStream -> TrainStream
# pipeline runs on memory independent of trace length.
go build -o "$smoke" ./cmd/tracegen ./cmd/branchnet-train
GOMEMLIMIT=256MiB "$smoke/tracegen" -bench leela -split train \
    -branches 100000000 -stream -out "$smoke/big.bnt"
GOMEMLIMIT=256MiB "$smoke/branchnet-train" -stream-trace "$smoke/big.bnt" \
    -store-dir "$smoke/big.store" -model mini-1kb -epochs 1 -examples 2000 \
    -stream-pcs 0x2024,0x2700
