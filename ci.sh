#!/bin/sh
# CI gate: vet, build, then the short test suite under the race detector.
# The experiment runner fans work out across goroutines (worker pools +
# single-flight caches), so -race is mandatory on every PR; -short skips
# the long training experiments while still covering the cache, extraction,
# and attach-filter logic they rely on.
set -eux

go vet ./...
go build ./...
go test -short -race ./...
