module branchnet

go 1.22
