// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Run with:
//
//	go test -bench=. -benchmem -timeout 0
//
// Each benchmark regenerates its table/figure in quick mode and reports
// the headline quantity as a custom metric (so `-bench` output doubles as
// a summary of the reproduction). Benchmarks share one experiment context:
// traces and trained models are cached across benchmarks, exactly like a
// single `branchnet-bench -all` run.
package main

import (
	"sync"
	"testing"

	"branchnet/internal/experiments"
)

var (
	benchCtx  *experiments.Context
	benchOnce sync.Once
)

func ctx() *experiments.Context {
	benchOnce.Do(func() {
		m := experiments.Quick()
		benchCtx = experiments.NewContext(m)
	})
	return benchCtx
}

// BenchmarkFig1 regenerates Fig. 1: avoidable MPKI when CNNs predict the
// top-k hard-to-predict branches, per benchmark.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, table := experiments.Fig1(ctx())
		b.Log("\n" + table.String())
		var base, avoided float64
		for _, r := range results {
			base += r.BaseMPKI
			avoided += r.AvoidedMPKI[len(r.AvoidedMPKI)-1]
		}
		b.ReportMetric(100*avoided/base, "%avoidable-mpki")
	}
}

// BenchmarkFig3 regenerates the Section IV / Fig. 3 predictor comparison
// on the noisy-history microbenchmark.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := experiments.Fig3(ctx())
		b.Log("\n" + table.String())
	}
}

// BenchmarkFig4 regenerates Fig. 4: generalization across unseen alphas
// for CNNs trained on the three training sets.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, table := experiments.Fig4(ctx())
		b.Log("\n" + table.String())
		// Headline: set 3's mean accuracy across alphas.
		set3 := results[len(results)-1]
		var sum float64
		for _, a := range set3.Accuracies {
			sum += a
		}
		b.ReportMetric(100*sum/float64(len(set3.Accuracies)), "%set3-accuracy")
	}
}

// BenchmarkFig9 regenerates Fig. 9: MPKI of MTAGE-SC (and ablations) with
// and without Big-BranchNet.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, table := experiments.Fig9(ctx())
		b.Log("\n" + table.String())
		var base, withBig float64
		for _, r := range results {
			base += r.MTAGESC
			withBig += r.WithBig
		}
		b.ReportMetric(100*(base-withBig)/base, "%mpki-reduction")
	}
}

// BenchmarkFig10 regenerates Fig. 10: per-branch accuracy of the most
// improved leela/mcf branches.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.Fig10(ctx())
		b.Log("\n" + table.String())
		if n := len(rows["leela"]); n > 0 {
			b.ReportMetric(100*rows["leela"][0].Improvement, "%top-branch-gain")
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11: MPKI and IPC improvement of the
// practical configurations over 64KB TAGE-SC-L.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.Fig11(ctx())
		b.Log("\n" + table.String())
		var red, ipc float64
		for _, r := range rows {
			red += r.MPKIReduction[experiments.IsoLatency]
			ipc += r.IPCGain[experiments.IsoLatency]
		}
		n := float64(len(rows))
		b.ReportMetric(100*red/n, "%isolat-mpki-reduction")
		b.ReportMetric(100*ipc/n, "%isolat-ipc-gain")
	}
}

// BenchmarkFig12 regenerates Fig. 12: training-set size sensitivity.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, table := experiments.Fig12(ctx())
		b.Log("\n" + table.String())
		b.ReportMetric(100*points[len(points)-1].MPKIReduction, "%mpki-reduction-full-data")
	}
}

// BenchmarkFig13 regenerates Fig. 13: storage-budget sensitivity.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, table := experiments.Fig13(ctx())
		b.Log("\n" + table.String())
		if len(points) > 0 {
			b.ReportMetric(100*points[len(points)-1].MPKIReduction, "%mpki-reduction-largest")
		}
	}
}

// BenchmarkAblations runs the design-choice ablation study (geometric
// slices, pooling width, hidden depth, convolution width) on the Fig. 3
// branch.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, table := experiments.Ablations(ctx())
		b.Log("\n" + table.String())
		b.ReportMetric(100*results[0].Accuracy, "%full-model-accuracy")
	}
}

// BenchmarkTableII regenerates Table II: the per-branch storage breakdown
// of the inference engine (pure arithmetic; also a useful micro-benchmark
// of the storage calculator).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := experiments.TableII()
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

// BenchmarkTableIV regenerates Table IV: leela's MPKI-reduction progression
// from Big-BranchNet to fully-quantized Mini-BranchNet.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table := experiments.TableIV(ctx())
		b.Log("\n" + table.String())
		if len(rows) == 5 {
			b.ReportMetric(100*rows[0].MPKIReduction, "%big")
			b.ReportMetric(100*rows[4].MPKIReduction, "%fully-quantized")
		}
	}
}
