// The Fig. 3 / Fig. 4 motivating example, end to end: why runtime
// predictors fail on Branch B, and how offline-trained CNNs succeed — but
// only when the training set has *coverage* (the paper's Section IV
// argument).
//
//	go run ./examples/noisyhistory
package main

import (
	"fmt"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/perceptron"
	"branchnet/internal/predictor"
	"branchnet/internal/tage"
)

func main() {
	prog := bench.NoisyHistory()

	// --- Part 1 (Fig. 3): runtime predictors on Branch B ---------------
	fmt.Println("Part 1: runtime predictors on Branch B (N~rand(5,10), alpha=0.5)")
	testTrace := prog.Generate(bench.NoisyInput("fig3", 11, 5, 10, 0.5), 150000)
	for _, p := range []predictor.Predictor{
		tage.New(tage.TAGESCL64KB(), 1),
		perceptron.New(perceptron.DefaultConfig()),
	} {
		res := predictor.Evaluate(p, testTrace)
		fmt.Printf("  %-24s branch B accuracy %.3f\n", p.Name(), res.BranchAccuracy(bench.NoisyPCB))
	}
	fmt.Println("  (paper: ~0.81 for both — barely above the 0.78 bias)")

	// --- Part 2 (Fig. 4): offline CNNs, three training sets ------------
	fmt.Println("\nPart 2: CNNs trained offline on three training sets, tested on unseen alphas")
	knobs := branchnet.BigKnobsScaled()
	window := knobs.WindowTokens()
	sets := []struct {
		label string
		in    bench.Input
	}{
		{"set1: N=10, alpha=1.0   (no diversity)", bench.NoisyInput("set1", 100, 10, 10, 1.0)},
		{"set2: N=5..10, alpha=1.0 (A never varies)", bench.NoisyInput("set2", 200, 5, 10, 1.0)},
		{"set3: N=1..4, alpha=0.5  (diverse coverage)", bench.NoisyInput("set3", 300, 1, 4, 0.5)},
	}
	alphas := []float64{0.2, 0.6, 1.0}

	// Per-alpha test datasets.
	testDS := make([]*branchnet.Dataset, len(alphas))
	for i, a := range alphas {
		tr := prog.Generate(bench.NoisyInput("t", 500+int64(i), 5, 10, a), 60000)
		testDS[i] = branchnet.ExtractCapped(tr, []uint64{bench.NoisyPCB}, window, knobs.PCBits, 3000)[bench.NoisyPCB]
	}

	opts := branchnet.DefaultTrainOpts()
	opts.Epochs = 7
	opts.MaxExamples = 10000
	for _, s := range sets {
		trainTrace := prog.Generate(s.in, 500000)
		ds := branchnet.ExtractCapped(trainTrace, []uint64{bench.NoisyPCB}, window, knobs.PCBits, opts.MaxExamples)[bench.NoisyPCB]
		m := branchnet.New(knobs, bench.NoisyPCB, 3)
		m.Train(ds, opts)
		fmt.Printf("  %-44s:", s.label)
		for i, a := range alphas {
			fmt.Printf("  a=%.1f -> %.3f", a, m.Accuracy(testDS[i]))
		}
		fmt.Println()
	}
	fmt.Println("  (paper shape: only set 3 generalizes — coverage beats representativeness;")
	fmt.Println("   its N range [1,4] does not even overlap the test range [5,10])")
}
