// Quickstart: train one BranchNet model for one hard-to-predict branch and
// predict with it — the smallest end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
)

func main() {
	log.SetFlags(0)

	// 1. A workload. The noisy-history microbenchmark (Fig. 3 of the
	//    paper) has one famously hard branch: Branch B, the exit of a
	//    loop whose trip count was decided by earlier branches.
	prog := bench.NoisyHistory()

	// 2. Collect a training trace from a *training* input and a test
	//    trace from a different, unseen input (different seed, different
	//    parameters — offline training must generalize).
	trainInput := bench.NoisyInput("train", 1, 1, 4, 0.5)
	testInput := bench.NoisyInput("test", 2, 5, 10, 0.7)
	trainTrace := prog.Generate(trainInput, 400000)
	testTrace := prog.Generate(testInput, 50000)

	// 3. Pick a model architecture (Table I knobs) and extract per-branch
	//    datasets: each example is the global history right before one
	//    execution of the branch, plus its direction.
	knobs := branchnet.MiniQuick(1024)
	window := knobs.WindowTokens()
	trainDS := branchnet.ExtractCapped(trainTrace, []uint64{bench.NoisyPCB},
		window, knobs.PCBits, 10000)[bench.NoisyPCB]
	testDS := branchnet.ExtractCapped(testTrace, []uint64{bench.NoisyPCB},
		window, knobs.PCBits, 4000)[bench.NoisyPCB]
	fmt.Printf("training examples: %d (taken rate %.2f)\n",
		len(trainDS.Examples), trainDS.TakenRate())

	// 4. Train.
	model := branchnet.New(knobs, bench.NoisyPCB, 1)
	opts := branchnet.DefaultTrainOpts()
	opts.Epochs = 6
	loss := model.Train(trainDS, opts)
	fmt.Printf("final training loss: %.4f\n", loss)

	// 5. Evaluate on the unseen input, then quantize to the integer-only
	//    inference-engine form and evaluate that too.
	fmt.Printf("float model accuracy on unseen input: %.4f\n", model.Accuracy(testDS))

	engineModel, err := model.Quantize(trainDS.Subsample(3500, 7))
	if err != nil {
		log.Fatalf("quantize: %v", err)
	}
	correct := 0
	for i, e := range testDS.Examples {
		if engineModel.Predict(e.History, uint64(i)) == e.Taken {
			correct++
		}
	}
	fmt.Printf("quantized engine accuracy:             %.4f\n",
		float64(correct)/float64(len(testDS.Examples)))
	fmt.Printf("engine storage: %s\n", engineModel.Storage())
	fmt.Println("(the *-quick knobs trade budget fidelity for CPU training speed;")
	fmt.Println(" branchnet.Mini(1024) is the budget-exact preset)")

	// For reference: the branch's static bias — what a profile-guided
	// static predictor would score.
	bias := testDS.TakenRate()
	if bias < 0.5 {
		bias = 1 - bias
	}
	fmt.Printf("static-bias accuracy (for contrast):   %.4f\n", bias)
}
