// Walk through the Mini-BranchNet inference-engine storage model
// (Table II) and latency estimates (Section V-C): what exactly fits in a
// 0.25KB-2KB per-branch budget, and why the engine matches TAGE-SC-L's
// 4-cycle prediction latency.
//
//	go run ./examples/storage
package main

import (
	"fmt"

	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/hybrid"
	"branchnet/internal/tage"
	"branchnet/internal/tarsa"
)

func main() {
	fmt.Println("Per-branch storage of the Mini-BranchNet inference engine (Table II):")
	for _, budget := range []int{2048, 1024, 512, 256} {
		k := branchnet.Mini(budget)
		b := k.Storage()
		fmt.Printf("  %-22s %s\n", k.Name, b)
	}

	fmt.Println("\nEngine deployments (Fig. 11):")
	for _, plan := range []struct {
		name string
		p    hybrid.SlotPlan
	}{
		{"iso-latency", hybrid.IsoLatency32KB()},
		{"iso-storage", hybrid.IsoStorage8KB()},
	} {
		fmt.Printf("  %-12s %2d model slots, %5.1f KB total\n",
			plan.name, plan.p.TotalSlots(), float64(plan.p.TotalBytes())/1024)
	}
	fmt.Printf("  %-12s %2d model slots, %5.1f KB total (no sum-pooling: history-length buffers)\n",
		"tarsa", tarsa.MaxBranches, float64(tarsa.StorageBits(tarsa.MaxBranches))/8192)

	fmt.Println("\nLatency model (Section V-C, in 64-bit Kogge-Stone adder units):")
	g, cyc := engine.UpdateLatency()
	fmt.Printf("  convolutional-history update: %2d gate delays -> %d cycle\n", g, cyc)
	for _, feats := range []int{56, 110, 187} {
		g, cyc = engine.PredictionLatency(feats)
		fmt.Printf("  prediction with %3d features:  %2d gate delays -> %d cycles\n", feats, g, cyc)
	}
	fmt.Printf("  TAGE-SC-L 64KB estimate:       %d cycles (paper: both are 4-cycle predictors)\n",
		engine.TageLatencyCycles())

	fmt.Println("\nRuntime predictor budgets for scale:")
	for _, cfg := range []tage.Config{tage.TAGESCL64KB(), tage.TAGESCL56KB(), tage.MTAGESC()} {
		p := tage.New(cfg, 1)
		fmt.Printf("  %-18s %8.1f KB\n", p.Name(), float64(p.Bits())/8192)
	}
}
