// The full deployment pipeline on a SPEC-like workload: offline-train
// Mini-BranchNet models for the leela-like benchmark's hardest branches,
// pack them into the paper's iso-latency engine plan, and compare the
// hybrid against plain TAGE-SC-L on unseen inputs — MPKI and estimated
// IPC.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"time"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/gshare"
	"branchnet/internal/hybrid"
	"branchnet/internal/pipeline"
	"branchnet/internal/predictor"
	"branchnet/internal/tage"
	"branchnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	prog := bench.ByName("leela")
	newBase := func() predictor.Predictor { return tage.New(tage.TAGESCL64KB(), 1) }

	// Traces per Table III: disjoint train / validation / test inputs.
	var trainTraces []*trace.Trace
	for _, in := range prog.Inputs(bench.Train) {
		trainTraces = append(trainTraces, prog.Generate(in, 120000))
	}
	validTrace := prog.Generate(prog.Inputs(bench.Validation)[0], 120000)

	// Train Mini-BranchNet candidates at two storage budgets and pack
	// them into a (scaled) iso-latency engine plan. Both budgets train
	// against the same baseline, so the step-1 validation pass is
	// evaluated once and shared.
	start := time.Now()
	valid := branchnet.EvalValidation(newBase, validTrace)
	perBudget := make(map[int][]*branchnet.Attached)
	for _, budget := range []int{1024, 256} {
		cfg := branchnet.DefaultOfflineConfig(branchnet.MiniQuick(budget))
		cfg.TopBranches = 10
		cfg.Train.Epochs = 4
		perBudget[budget] = branchnet.TrainOfflineWith(cfg, trainTraces, validTrace, newBase, valid)
		log.Printf("budget %4dB: %d candidate models", budget, len(perBudget[budget]))
	}
	plan := hybrid.IsoLatency32KB().Scale(1, 4)
	models := hybrid.Pack(perBudget, plan)
	log.Printf("packed %d models into %d slots (%.1f KB engine) in %s",
		len(models), plan.TotalSlots(), float64(plan.TotalBytes())/1024,
		time.Since(start).Round(time.Second))
	for _, m := range models {
		fmt.Printf("  pc=%#06x %-22s validation %.3f -> %.3f\n",
			m.PC, m.Knobs.Name, m.BaseAccuracy, m.ValidAccuracy)
	}

	// Evaluate on the unseen ref inputs: MPKI and pipeline IPC.
	cfg := pipeline.DefaultConfig()
	for _, in := range prog.Inputs(bench.Test) {
		tr := prog.Generate(in, 120000)
		base := pipeline.Simulate(cfg, gshare.Default4KB(), newBase(), tr)
		hyb := pipeline.Simulate(cfg, gshare.Default4KB(),
			hybrid.New(newBase(), models, ""), tr)
		fmt.Printf("test %-8s MPKI %6.2f -> %6.2f (-%.1f%%)   IPC %.3f -> %.3f (+%.1f%%)\n",
			in.Name, base.MPKI(), hyb.MPKI(),
			100*(base.MPKI()-hyb.MPKI())/base.MPKI(),
			base.IPC(), hyb.IPC(), 100*(hyb.IPC()/base.IPC()-1))
	}
	fmt.Println("(paper: iso-latency Mini-BranchNet averages -9.6% MPKI, +1.3% IPC)")
}
