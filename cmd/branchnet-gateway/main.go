// Command branchnet-gateway fronts a fleet of branchnet-serve replicas:
// it routes /v1/predict by consistent-hashing the session id onto a
// replica (strict session affinity — each session's history ring and
// baseline live on exactly one replica), health-checks the fleet, fans
// /v1/reload out, and migrates serializable session state off draining
// or dying replicas so clients never observe a prediction divergence.
//
// Usage:
//
//	branchnet-gateway -replicas http://127.0.0.1:8601,http://127.0.0.1:8602 \
//	    [-addr :9090] [-health-interval 500ms]
//
// Replica entries of the form @path are read from path (an -addr-file
// written by branchnet-serve), polled briefly so both sides can start
// together in scripts.
//
// Endpoints: POST /v1/predict (proxied with affinity), POST /v1/reload
// (fan-out), POST /v1/drain {"replica": url} (drain + migrate one
// replica), GET /healthz, GET /v1/stats, GET /metrics, GET /debug/spans.
// SIGHUP fans a reload across the fleet; SIGINT/SIGTERM shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"branchnet/internal/gateway"
	"branchnet/internal/obs"
)

// resolveReplica turns one -replicas entry into a base URL. An entry
// starting with '@' names an -addr-file to poll (the daemon writes it
// after binding).
func resolveReplica(entry string, wait time.Duration) (string, error) {
	if !strings.HasPrefix(entry, "@") {
		if !strings.Contains(entry, "://") {
			entry = "http://" + entry
		}
		return strings.TrimSuffix(entry, "/"), nil
	}
	path := entry[1:]
	deadline := time.Now().Add(wait)
	for {
		b, err := os.ReadFile(path)
		if addr := strings.TrimSpace(string(b)); err == nil && addr != "" {
			return "http://" + addr, nil
		}
		if !time.Now().Before(deadline) {
			if err == nil {
				err = errors.New("file is empty")
			}
			return "", err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-gateway: ")

	addr := flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripted startups)")
	replicas := flag.String("replicas", "", "comma-separated branchnet-serve base URLs (or @addr-file entries)")
	wait := flag.Duration("wait", 5*time.Second, "how long to wait for @addr-file replica entries to appear")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "replica /healthz probe period")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a replica is marked down")
	routeBudget := flag.Duration("route-budget", 5*time.Second, "per-request budget across 429 backoff and drain re-routes")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle session-pin eviction age")
	traceSample := flag.Int("trace-sample", 0, "mint a distributed trace for every Nth unheadered request (0: off; client Branchnet-Trace headers always propagate)")
	sloWindow := flag.Duration("slo-window", 10*time.Second, "window for the SLO burn-rate gauges (error ratio, p99 burn)")
	sloP99 := flag.Duration("slo-p99", 250*time.Millisecond, "p99 latency target the slo_p99_burn gauge compares against")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot to this file on clean shutdown")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-gateway")

	var urls []string
	for _, entry := range strings.Split(*replicas, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		url, err := resolveReplica(entry, *wait)
		if err != nil {
			log.Fatalf("resolving replica %q: %v", entry, err)
		}
		urls = append(urls, url)
	}
	if len(urls) == 0 {
		log.Fatal("at least one -replicas entry is required")
	}

	g, err := gateway.New(gateway.Config{
		Replicas:       urls,
		HealthInterval: *healthInterval,
		FailThreshold:  *failThreshold,
		RouteBudget:    *routeBudget,
		SessionTTL:     *sessionTTL,
		TraceSample:    *traceSample,
		SLOWindow:      *sloWindow,
		SLOTargetP99:   *sloP99,
	})
	if err != nil {
		log.Fatal(err)
	}
	slog.Info("fronting fleet", "replicas", len(urls))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}
	slog.Info("gateway listening", "url", "http://"+ln.Addr().String())

	httpSrv := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	writeMetrics := func() {
		if err := obs.WriteMetricsFile(*metricsOut, g.Obs()); err != nil {
			slog.Error("writing -metrics-out", "err", err)
		}
	}

	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, os.Interrupt, syscall.SIGTERM)

	for {
		select {
		case <-reload:
			slog.Info("SIGHUP: fanning reload across the fleet")
			req, _ := http.NewRequest(http.MethodPost, "http://"+ln.Addr().String()+"/v1/reload", strings.NewReader("{}"))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				slog.Error("reload fan-out failed", "err", err)
				continue
			}
			resp.Body.Close()
			slog.Info("reload fanned out", "status", resp.StatusCode)
		case sig := <-quit:
			slog.Info("shutting down", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				slog.Warn("http shutdown", "err", err)
			}
			cancel()
			g.Close()
			writeMetrics()
			slog.Info("bye")
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: %v", err)
			}
			writeMetrics()
			return
		}
	}
}
