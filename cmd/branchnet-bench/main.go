// Command branchnet-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	branchnet-bench [-mode quick|full] [-parallel N] [-fig 1|3|4|9|10|11|12|13] [-table 1|2|3|4]
//	branchnet-bench -all
//	branchnet-bench -bench-train [-bench-out BENCH_train.json]
//	branchnet-bench -bench-serve [-serve-out BENCH_serve.json] [-bench-reps N]
//
// -bench-train measures train-step throughput (examples/s, ns/step,
// allocs/op) for the standard model configurations and writes the numbers
// — with speedups against the recorded seed trainer — to -bench-out.
// -bench-serve measures PredictBatch inference throughput (preds/s,
// best of -bench-reps runs) at the paper's table geometries and writes
// the numbers — with speedups against the recorded scalar evaluator —
// to -serve-out.
// -bench-extract measures streamed example-store extraction (records/s,
// examples/s, peak live heap) against the in-memory pipeline and writes
// the numbers — seed-relative — to -extract-out.
// -cpuprofile/-memprofile capture runtime/pprof profiles of any mode.
//
// Without -fig/-table/-all it prints the static tables (I, II, III), which
// need no training. Figure experiments train BranchNet models and can take
// minutes (quick) to tens of minutes (full).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/experiments"
	"branchnet/internal/faults"
	"branchnet/internal/obs"
	"branchnet/internal/profiles"
)

// namedJob is one table/figure regeneration of the -all suite.
type namedJob struct {
	name string
	f    func() experiments.Table
}

// result is a finished job's rendered table and wall-clock cost.
type result struct {
	table   experiments.Table
	elapsed time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-bench: ")

	mode := flag.String("mode", "quick", "experiment scale: quick, full, or micro (smoke)")
	fig := flag.Int("fig", 0, "figure to regenerate (1,3,4,9,10,11,12,13)")
	table := flag.Int("table", 0, "table to regenerate (1,2,3,4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation study")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	parallel := flag.Int("parallel", 0, "worker-pool width for per-benchmark fan-out and the -all figure suite (0 = GOMAXPROCS)")
	benchTrain := flag.Bool("bench-train", false, "measure train-step throughput and write -bench-out")
	benchOut := flag.String("bench-out", "BENCH_train.json", "output file for -bench-train")
	benchServe := flag.Bool("bench-serve", false, "measure PredictBatch serving throughput and write -serve-out")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "output file for -bench-serve")
	benchExtract := flag.Bool("bench-extract", false, "measure streamed vs in-memory extraction throughput and write -extract-out")
	extractOut := flag.String("extract-out", "BENCH_extract.json", "output file for -bench-extract")
	extractRecords := flag.Int("extract-records", 2_000_000, "trace length (branch records) for -bench-extract")
	benchReps := flag.Int("bench-reps", 9, "best-of repetition count for -bench-serve and -bench-extract (rejects shared-machine noise)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-safe training snapshots; rerunning the same invocation over it skips finished work and resumes bit-identical")
	checkpointEvery := flag.Int("checkpoint-every", 0, "mid-epoch snapshot cadence in optimizer steps (0 = epoch boundaries only; needs -checkpoint-dir)")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec, e.g. 'checkpoint.rename:kill@3;seed=1' (chaos testing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot (training, caches, checkpoints, faults) to this file")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-bench")

	// Per-epoch training spans and counters land on the process-wide
	// registry, which -metrics-out snapshots at exit.
	branchnet.EnableObs(obs.Default, obs.DefaultTracer)
	writeMetrics := func() {
		if err := obs.WriteMetricsFile(*metricsOut, obs.Default); err != nil {
			slog.Error("writing -metrics-out", "err", err)
		}
	}

	injector, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiles.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *parallel < 0 {
		log.Fatalf("-parallel must be >= 0, got %d", *parallel)
	}
	var m experiments.Mode
	switch *mode {
	case "quick":
		m = experiments.Quick()
	case "full":
		m = experiments.Full()
	case "micro":
		m = experiments.Micro()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *benchmarks != "" {
		names := splitComma(*benchmarks)
		for _, n := range names {
			if bench.ByName(n) == nil {
				log.Fatalf("unknown benchmark %q (known: %s)", n, strings.Join(knownBenchmarks(), ", "))
			}
		}
		m.Benchmarks = names
	}
	ctx := experiments.NewContext(m)
	ctx.Parallel = *parallel
	ctx.CheckpointDir = *checkpointDir
	ctx.CheckpointEvery = *checkpointEvery
	ctx.Faults = injector

	// SIGTERM/SIGINT request a graceful stop: in-flight branch trainings
	// persist a final snapshot, the suite unwinds, and the process exits
	// resumable (status 3).
	var stop atomic.Bool
	ctx.Stop = &stop
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		slog.Warn("signal received: checkpointing and stopping", "signal", s.String())
		stop.Store(true)
		signal.Stop(sigc) // a second signal kills immediately
	}()

	width := *parallel
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	run := func(name string, f func() experiments.Table) {
		start := time.Now()
		t := f()
		fmt.Println(t.String())
		slog.Info("experiment done", "name", name, "elapsed", time.Since(start).Round(time.Millisecond).String())
	}

	// runAll fans the whole suite out across the worker pool; the shared
	// single-flight caches in the context keep concurrent experiments from
	// duplicating trace generation, training, or baseline evaluation.
	// Output stays in suite order: each job's table is printed as soon as
	// it and every job before it have finished.
	runAll := func(jobs []namedJob) {
		done := make([]chan result, len(jobs))
		for i := range done {
			done[i] = make(chan result, 1)
		}
		sem := make(chan struct{}, width)
		for i, j := range jobs {
			go func(i int, j namedJob) {
				sem <- struct{}{}
				defer func() { <-sem }()
				start := time.Now()
				done[i] <- result{table: j.f(), elapsed: time.Since(start)}
			}(i, j)
		}
		for i, j := range jobs {
			r := <-done[i]
			fmt.Println(r.table.String())
			slog.Info("experiment done", "name", j.name, "elapsed", r.elapsed.Round(time.Millisecond).String())
		}
	}

	figs := map[int]func() experiments.Table{
		1:  func() experiments.Table { _, t := experiments.Fig1(ctx); return t },
		3:  func() experiments.Table { return experiments.Fig3(ctx) },
		4:  func() experiments.Table { _, t := experiments.Fig4(ctx); return t },
		9:  func() experiments.Table { _, t := experiments.Fig9(ctx); return t },
		10: func() experiments.Table { _, t := experiments.Fig10(ctx); return t },
		11: func() experiments.Table { _, t := experiments.Fig11(ctx); return t },
		12: func() experiments.Table { _, t := experiments.Fig12(ctx); return t },
		13: func() experiments.Table { _, t := experiments.Fig13(ctx); return t },
	}
	tables := map[int]func() experiments.Table{
		1: func() experiments.Table { return experiments.TableI() },
		2: func() experiments.Table { return experiments.TableII() },
		3: func() experiments.Table { return experiments.TableIII() },
		4: func() experiments.Table { _, t := experiments.TableIV(ctx); return t },
	}

	switch {
	case *benchExtract:
		start := time.Now()
		report, tbl := experiments.ExtractBench(*extractRecords, *benchReps)
		fmt.Println(tbl.String())
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("encoding %s: %v", *extractOut, err)
		}
		if err := os.WriteFile(*extractOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *extractOut, err)
		}
		slog.Info("bench-extract done", "elapsed", time.Since(start).Round(time.Millisecond).String(), "out", *extractOut)
	case *benchServe:
		start := time.Now()
		report, tbl := experiments.ServeBench(*benchReps)
		fmt.Println(tbl.String())
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("encoding %s: %v", *serveOut, err)
		}
		if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *serveOut, err)
		}
		slog.Info("bench-serve done", "elapsed", time.Since(start).Round(time.Millisecond).String(), "out", *serveOut)
	case *benchTrain:
		start := time.Now()
		report, tbl := experiments.TrainBench()
		fmt.Println(tbl.String())
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("encoding %s: %v", *benchOut, err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *benchOut, err)
		}
		slog.Info("bench-train done", "elapsed", time.Since(start).Round(time.Millisecond).String(), "out", *benchOut)
	case *ablations:
		run("ablations", func() experiments.Table { _, t := experiments.Ablations(ctx); return t })
	case *all:
		var jobs []namedJob
		for _, i := range []int{1, 2, 3} {
			jobs = append(jobs, namedJob{fmt.Sprintf("table %d", i), tables[i]})
		}
		for _, i := range []int{1, 3, 4, 9, 10, 11, 12, 13} {
			jobs = append(jobs, namedJob{fmt.Sprintf("fig %d", i), figs[i]})
		}
		jobs = append(jobs, namedJob{"table 4", tables[4]})
		jobs = append(jobs, namedJob{"ablations", func() experiments.Table { _, t := experiments.Ablations(ctx); return t }})
		runAll(jobs)
	case *fig != 0:
		f, ok := figs[*fig]
		if !ok {
			log.Fatalf("no figure %d (the paper's evaluation figures are 1,3,4,9,10,11,12,13)", *fig)
		}
		run(fmt.Sprintf("fig %d", *fig), f)
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			log.Fatalf("no table %d", *table)
		}
		run(fmt.Sprintf("table %d", *table), f)
	default:
		for _, i := range []int{1, 2, 3} {
			run(fmt.Sprintf("table %d", i), tables[i])
		}
		fmt.Fprintln(os.Stderr, "hint: use -fig N, -table 4 or -all to run the training experiments")
	}

	// A training run that stopped or failed renders incomplete tables
	// above; the exit status is what distinguishes them from a real run.
	if err := ctx.TrainErr(); err != nil {
		stopProfiles()
		writeMetrics()
		if errors.Is(err, branchnet.ErrStopped) {
			if *checkpointDir != "" {
				slog.Warn("stopped; state checkpointed — rerun with the same flags to resume", "dir", *checkpointDir)
			} else {
				slog.Warn("stopped (no -checkpoint-dir: progress discarded)")
			}
			os.Exit(3)
		}
		log.Fatalf("training: %v", err)
	}
	writeMetrics()
}

// knownBenchmarks lists every name -benchmarks accepts: the SPEC-like
// suite plus the Fig. 3 microbenchmark.
func knownBenchmarks() []string {
	var names []string
	for _, p := range bench.All() {
		names = append(names, p.Name)
	}
	return append(names, "noisyhistory")
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
