package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// The end-to-end crash tests re-exec this test binary as branchnet-bench:
// with the env var set, TestMain runs main() against the test's own
// arguments instead of the test suite, so the subprocess under SIGKILL is
// the real CLI — flag parsing, signal handling, checkpoint threading,
// table printing and all.
func TestMain(m *testing.M) {
	if os.Getenv("BRANCHNET_BENCH_E2E") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// benchArgs is the one invocation every E2E leg runs: a real (micro-scale)
// Table IV regeneration, which trains two model families on leela and
// prints their final metrics to stdout.
func benchArgs(dir string) []string {
	return []string{
		"-mode", "micro", "-benchmarks", "leela", "-table", "4",
		"-parallel", "1", "-checkpoint-dir", dir,
	}
}

func benchCmd(dir string, stdout, stderr *bytes.Buffer) *exec.Cmd {
	cmd := exec.Command(os.Args[0], benchArgs(dir)...)
	cmd.Env = append(os.Environ(), "BRANCHNET_BENCH_E2E=1")
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	return cmd
}

// runBench runs the suite to completion and returns its stdout — the
// rendered tables, with all timing chatter on stderr.
func runBench(t *testing.T, dir string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := benchCmd(dir, &stdout, &stderr)
	if err := cmd.Run(); err != nil {
		t.Fatalf("branchnet-bench %v: %v\nstderr:\n%s", benchArgs(dir), err, stderr.String())
	}
	return stdout.Bytes()
}

// interruptBench starts the suite, waits for the first checkpoint file to
// land in dir, and delivers sig. It returns the process's exit error (nil
// if it exited 0) and its stderr.
func interruptBench(t *testing.T, dir string, sig syscall.Signal) (error, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := benchCmd(dir, &stdout, &stderr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	deadline := time.After(4 * time.Minute)
	for {
		found := false
		filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && filepath.Ext(path) == ".ckpt" {
				found = true
			}
			return nil
		})
		if found {
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("suite finished (err=%v) before any checkpoint appeared\nstderr:\n%s", err, stderr.String())
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("no checkpoint file appeared in %s\nstderr:\n%s", dir, stderr.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if err := cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		return err, stderr.String()
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("suite did not exit after signal")
		return nil, ""
	}
}

// TestBenchKillResumeBitIdentical is the suite-level crash-safety
// acceptance test: SIGKILL branchnet-bench mid-training — no handler, no
// cleanup, exactly a crash — then rerun the same invocation over the same
// checkpoint directory and require the resumed run's rendered tables to
// match an uninterrupted golden run byte for byte. A second rerun over the
// now-complete directory must reproduce them again (from snapshots alone,
// without retraining).
func TestBenchKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training test")
	}
	golden := runBench(t, t.TempDir())

	dir := t.TempDir()
	err, stderr := interruptBench(t, dir, syscall.SIGKILL)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.ExitCode() != -1 {
		t.Fatalf("SIGKILLed suite exited err=%v, want signal death\nstderr:\n%s", err, stderr)
	}

	resumed := runBench(t, dir)
	if !bytes.Equal(golden, resumed) {
		t.Errorf("resumed run differs from golden\n--- golden ---\n%s--- resumed ---\n%s", golden, resumed)
	}
	again := runBench(t, dir)
	if !bytes.Equal(golden, again) {
		t.Errorf("completed-directory rerun differs from golden\n--- golden ---\n%s--- rerun ---\n%s", golden, again)
	}
}

// TestBenchSigtermCheckpointsAndExitsResumable covers the graceful leg:
// SIGTERM must make the suite persist final snapshots, report itself
// stopped with exit status 3, and leave a directory a plain rerun resumes
// from. (Byte-identity of the resumed output is TestBenchKillResume's
// job; this leg pins the signal contract.)
func TestBenchSigtermCheckpointsAndExitsResumable(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training test")
	}
	dir := t.TempDir()
	err, stderr := interruptBench(t, dir, syscall.SIGTERM)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ProcessState.ExitCode() != 3 {
		t.Fatalf("SIGTERMed suite exited err=%v, want exit status 3\nstderr:\n%s", err, stderr)
	}
	if want := "rerun with the same flags to resume"; !bytes.Contains([]byte(stderr), []byte(want)) {
		t.Errorf("stderr does not mention the resume hint %q:\n%s", want, stderr)
	}

	var stdout, errbuf bytes.Buffer
	cmd := benchCmd(dir, &stdout, &errbuf)
	if err := cmd.Run(); err != nil {
		t.Fatalf("resume after SIGTERM failed: %v\nstderr:\n%s", err, errbuf.String())
	}
	if want := "Table IV"; !bytes.Contains(stdout.Bytes(), []byte(want)) {
		t.Errorf("resumed run printed no %q table:\n%s", want, stdout.String())
	}
}
