// Command tracegen generates synthetic benchmark branch traces (BNT1
// format), optionally restricted to SimPoint-selected representative
// regions.
//
// Usage:
//
//	tracegen -bench leela -split test -branches 1000000 -out leela-test.bnt
//	tracegen -bench mcf -split train -simpoints 5 -out mcf-train.bnt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"branchnet/internal/bench"
	"branchnet/internal/obs"
	"branchnet/internal/simpoint"
	"branchnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	name := flag.String("bench", "leela", "benchmark name (see -list)")
	split := flag.String("split", "test", "input split: train, validation, test")
	input := flag.Int("input", 0, "input index within the split")
	branches := flag.Int("branches", 500000, "branch records to generate")
	out := flag.String("out", "", "output trace file (default <bench>-<split>.bnt)")
	simpoints := flag.Int("simpoints", 0, "select up to K SimPoint regions instead of the full trace")
	stream := flag.Bool("stream", false, "stream records to the output file with O(1) memory (for traces too big for RAM; incompatible with -simpoints)")
	list := flag.Bool("list", false, "list benchmarks and inputs")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("tracegen")

	if *list {
		for _, p := range append(bench.All(), bench.NoisyHistory()) {
			fmt.Printf("%s:\n", p.Name)
			for _, s := range []bench.Split{bench.Train, bench.Validation, bench.Test} {
				fmt.Printf("  %-11s:", s)
				for i, in := range p.Inputs(s) {
					fmt.Printf(" [%d]%s", i, in.Name)
				}
				fmt.Println()
			}
		}
		return
	}

	p := bench.ByName(*name)
	if p == nil {
		log.Fatalf("unknown benchmark %q (use -list)", *name)
	}
	var sp bench.Split
	switch *split {
	case "train":
		sp = bench.Train
	case "validation", "valid":
		sp = bench.Validation
	case "test", "ref":
		sp = bench.Test
	default:
		log.Fatalf("unknown split %q", *split)
	}
	ins := p.Inputs(sp)
	if *input < 0 || *input >= len(ins) {
		log.Fatalf("input index %d out of range (split has %d inputs)", *input, len(ins))
	}
	in := ins[*input]

	if *stream {
		if *simpoints > 0 {
			log.Fatal("-stream cannot be combined with -simpoints (region selection needs the whole trace)")
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("%s-%s.bnt", p.Name, *split)
		}
		w, err := trace.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		records, err := p.GenerateStream(w, in, *branches)
		if err == nil {
			err = w.Close()
		}
		if err != nil {
			log.Fatalf("streaming %s: %v", path, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		slog.Info("trace streamed", "path", path, "records", records,
			"kb", fmt.Sprintf("%.1f", float64(fi.Size())/1024))
		return
	}

	tr := p.Generate(in, *branches)
	slog.Info("trace generated", "bench", p.Name, "input", in.Name,
		"branches", tr.Branches(), "instructions", tr.Instructions(),
		"static_branches", trace.NewProfile(tr).StaticBranches())

	if *simpoints > 0 {
		cfg := simpoint.DefaultConfig()
		cfg.K = *simpoints
		regions := simpoint.Select(tr, cfg)
		slog.Info("SimPoint regions selected", "regions", len(regions))
		merged := &trace.Trace{}
		for _, r := range regions {
			slog.Debug("SimPoint region", "start", r.Start, "end", r.End,
				"weight", fmt.Sprintf("%.3f", r.Weight))
			merged.Records = append(merged.Records, tr.Records[r.Start:r.End]...)
		}
		tr = merged
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.bnt", p.Name, *split)
	}
	if err := tr.WriteFile(path); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	slog.Info("trace written", "path", path, "records", tr.Branches(),
		"kb", fmt.Sprintf("%.1f", float64(fi.Size())/1024))
}
