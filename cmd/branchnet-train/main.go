// Command branchnet-train runs the Section V-E offline training pipeline
// for one benchmark: select hard-to-predict branches on the validation
// inputs, train a BranchNet model per branch on the training inputs,
// attach the most-improved models, and report test-set results.
//
// Usage:
//
//	branchnet-train -bench leela -model mini-1kb
//	branchnet-train -bench mcf -model big -models 8 -baseline mtage
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/faults"
	"branchnet/internal/hybrid"
	"branchnet/internal/obs"
	"branchnet/internal/predictor"
	"branchnet/internal/profiles"
	"branchnet/internal/tage"
	"branchnet/internal/trace"
)

func knobsFor(model string) branchnet.Knobs {
	switch model {
	case "big":
		return branchnet.BigKnobsScaled()
	case "big-paper":
		return branchnet.BigKnobs()
	case "mini-2kb":
		return branchnet.MiniQuick(2048)
	case "mini-1kb":
		return branchnet.MiniQuick(1024)
	case "mini-0.5kb":
		return branchnet.MiniQuick(512)
	case "mini-0.25kb":
		return branchnet.MiniQuick(256)
	case "tarsa":
		return branchnet.TarsaKnobsQuick()
	default:
		log.Fatalf("unknown model %q", model)
		return branchnet.Knobs{}
	}
}

func baselineFor(name string) func() predictor.Predictor {
	cfgs := map[string]func() tage.Config{
		"tage64": tage.TAGESCL64KB, "tage56": tage.TAGESCL56KB,
		"mtage": tage.MTAGESC, "gtage": tage.GTAGE,
	}
	cfg, ok := cfgs[name]
	if !ok {
		log.Fatalf("unknown baseline %q", name)
	}
	return func() predictor.Predictor { return tage.New(cfg(), 1) }
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-train: ")

	benchName := flag.String("bench", "leela", "benchmark to train for")
	model := flag.String("model", "mini-1kb", "model preset: big, big-paper, mini-{2kb,1kb,0.5kb,0.25kb}, tarsa")
	baseline := flag.String("baseline", "tage64", "runtime baseline: tage64, tage56, mtage, gtage")
	topBranches := flag.Int("top", 16, "candidate branch pool size")
	maxModels := flag.Int("models", 10, "maximum models to attach")
	epochs := flag.Int("epochs", 4, "training epochs per model")
	examples := flag.Int("examples", 6000, "max training examples per branch")
	trainLen := flag.Int("trainlen", 300000, "branches per training input trace")
	evalLen := flag.Int("evallen", 150000, "branches per validation/test trace")
	out := flag.String("out", "", "write the attached quantized models to this .bnm file")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-safe per-branch snapshots; rerunning with the same directory resumes and finishes bit-identical")
	checkpointEvery := flag.Int("checkpoint-every", 0, "mid-epoch snapshot cadence in optimizer steps (0 = epoch boundaries only; needs -checkpoint-dir)")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec, e.g. 'checkpoint.rename:kill@3;seed=1' (chaos testing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot (epochs, checkpoints, faults) to this file")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-train")

	// Per-epoch spans and train/checkpoint counters land on the
	// process-wide registry, snapshotted by -metrics-out at exit.
	branchnet.EnableObs(obs.Default, obs.DefaultTracer)
	writeMetrics := func() {
		if err := obs.WriteMetricsFile(*metricsOut, obs.Default); err != nil {
			slog.Error("writing -metrics-out", "err", err)
		}
	}
	defer writeMetrics()

	injector, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiles.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	p := bench.ByName(*benchName)
	if p == nil {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	knobs := knobsFor(*model)
	newBase := baselineFor(*baseline)

	start := time.Now()
	var trainTraces []*trace.Trace
	for _, in := range p.Inputs(bench.Train) {
		trainTraces = append(trainTraces, p.Generate(in, *trainLen/len(p.Inputs(bench.Train))))
	}
	validTrace := &trace.Trace{}
	for _, in := range p.Inputs(bench.Validation) {
		part := p.Generate(in, *evalLen/len(p.Inputs(bench.Validation)))
		validTrace.Records = append(validTrace.Records, part.Records...)
	}
	slog.Info("traces generated", "elapsed", time.Since(start).Round(time.Millisecond).String())

	cfg := branchnet.DefaultOfflineConfig(knobs)
	cfg.TopBranches = *topBranches
	cfg.MaxModels = *maxModels
	cfg.Train.Epochs = *epochs
	cfg.Train.MaxExamples = *examples
	cfg.CheckpointDir = *checkpointDir
	cfg.CheckpointEvery = *checkpointEvery
	cfg.Faults = injector

	// SIGTERM/SIGINT request a graceful stop: in-flight branch trainings
	// persist a final snapshot, then the process exits resumable.
	var stop atomic.Bool
	cfg.Stop = &stop
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		slog.Warn("signal received: checkpointing and stopping", "signal", s.String())
		stop.Store(true)
		signal.Stop(sigc) // a second signal kills immediately
	}()

	start = time.Now()
	models, err := branchnet.TrainOfflineChecked(cfg, trainTraces, validTrace, newBase, nil)
	if errors.Is(err, branchnet.ErrStopped) {
		if *checkpointDir != "" {
			slog.Warn("stopped; state checkpointed — rerun with the same flags to resume",
				"elapsed", time.Since(start).Round(time.Millisecond).String(), "dir", *checkpointDir)
		} else {
			slog.Warn("stopped (no -checkpoint-dir: progress discarded)",
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
		writeMetrics()
		os.Exit(3)
	}
	if err != nil {
		log.Fatalf("offline training: %v", err)
	}
	slog.Info("offline training done", "elapsed", time.Since(start).Round(time.Millisecond).String(), "models", len(models))
	for _, m := range models {
		form := "float"
		if m.Engine != nil {
			form = fmt.Sprintf("engine %.0fB", m.Engine.Storage().TotalBytes())
		}
		fmt.Printf("  pc=%#06x validation %.4f -> %.4f (improvement %.0f) [%s]\n",
			m.PC, m.BaseAccuracy, m.ValidAccuracy, m.Improvement, form)
	}
	if len(models) == 0 {
		slog.Info("no branch cleared the improvement threshold (this is the expected outcome for gcc/omnetpp-like profiles)")
		return
	}

	if *out != "" {
		var ems []*engine.Model
		for _, m := range models {
			if m.Engine != nil {
				ems = append(ems, m.Engine)
			}
		}
		if len(ems) == 0 {
			slog.Warn("-out: no quantized models to write (big/tarsa models are float-only)")
		} else {
			if err := engine.WriteModelsFile(*out, ems, injector); err != nil {
				log.Fatalf("writing models: %v", err)
			}
			slog.Info("models written", "models", len(ems), "out", *out)
		}
	}

	// Test-set evaluation per ref input.
	for _, in := range p.Inputs(bench.Test) {
		tr := p.Generate(in, *evalLen)
		baseRes := predictor.Evaluate(newBase(), tr)
		hybRes := predictor.Evaluate(hybrid.New(newBase(), models, ""), tr)
		baseMPKI := baseRes.MPKI(tr)
		hybMPKI := hybRes.MPKI(tr)
		fmt.Printf("test %-12s baseline MPKI %.3f -> hybrid %.3f (%.1f%% reduction)\n",
			in.Name, baseMPKI, hybMPKI, 100*(baseMPKI-hybMPKI)/baseMPKI)
	}
}
