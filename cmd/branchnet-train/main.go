// Command branchnet-train runs the Section V-E offline training pipeline
// for one benchmark: select hard-to-predict branches on the validation
// inputs, train a BranchNet model per branch on the training inputs,
// attach the most-improved models, and report test-set results.
//
// Usage:
//
//	branchnet-train -bench leela -model mini-1kb
//	branchnet-train -bench mcf -model big -models 8 -baseline mtage
//	branchnet-train -stream-trace huge.bnt -store-dir huge.store -model mini-1kb
//
// -stream-trace switches to the bounded-memory pipeline: the BNT1 trace
// is stream-extracted into a sharded example store (never decoded into
// memory) and one model per selected branch is trained straight from
// the store — traces far larger than RAM train on a fixed budget, with
// results bit-identical to the in-memory trainer.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/faults"
	"branchnet/internal/hybrid"
	"branchnet/internal/obs"
	"branchnet/internal/predictor"
	"branchnet/internal/profiles"
	"branchnet/internal/tage"
	"branchnet/internal/trace"
)

func knobsFor(model string) branchnet.Knobs {
	switch model {
	case "big":
		return branchnet.BigKnobsScaled()
	case "big-paper":
		return branchnet.BigKnobs()
	case "mini-2kb":
		return branchnet.MiniQuick(2048)
	case "mini-1kb":
		return branchnet.MiniQuick(1024)
	case "mini-0.5kb":
		return branchnet.MiniQuick(512)
	case "mini-0.25kb":
		return branchnet.MiniQuick(256)
	case "tarsa":
		return branchnet.TarsaKnobsQuick()
	default:
		log.Fatalf("unknown model %q", model)
		return branchnet.Knobs{}
	}
}

func baselineFor(name string) func() predictor.Predictor {
	cfgs := map[string]func() tage.Config{
		"tage64": tage.TAGESCL64KB, "tage56": tage.TAGESCL56KB,
		"mtage": tage.MTAGESC, "gtage": tage.GTAGE,
	}
	cfg, ok := cfgs[name]
	if !ok {
		log.Fatalf("unknown baseline %q", name)
	}
	return func() predictor.Predictor { return tage.New(cfg(), 1) }
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-train: ")

	benchName := flag.String("bench", "leela", "benchmark to train for")
	model := flag.String("model", "mini-1kb", "model preset: big, big-paper, mini-{2kb,1kb,0.5kb,0.25kb}, tarsa")
	baseline := flag.String("baseline", "tage64", "runtime baseline: tage64, tage56, mtage, gtage")
	topBranches := flag.Int("top", 16, "candidate branch pool size")
	maxModels := flag.Int("models", 10, "maximum models to attach")
	epochs := flag.Int("epochs", 4, "training epochs per model")
	examples := flag.Int("examples", 6000, "max training examples per branch")
	trainLen := flag.Int("trainlen", 300000, "branches per training input trace")
	evalLen := flag.Int("evallen", 150000, "branches per validation/test trace")
	out := flag.String("out", "", "write the attached quantized models to this .bnm file")
	streamTrace := flag.String("stream-trace", "", "streaming mode: extract this BNT1 trace into an example store and train from it on bounded memory (bypasses the in-memory offline pipeline)")
	storeDir := flag.String("store-dir", "", "example-store directory for -stream-trace (a valid store there is reused; default <trace>.store)")
	streamPCs := flag.String("stream-pcs", "", "comma-separated branch PCs to train in streaming mode, hex accepted (default: the -top most-executed branches)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-safe per-branch snapshots; rerunning with the same directory resumes and finishes bit-identical")
	checkpointEvery := flag.Int("checkpoint-every", 0, "mid-epoch snapshot cadence in optimizer steps (0 = epoch boundaries only; needs -checkpoint-dir)")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec, e.g. 'checkpoint.rename:kill@3;seed=1' (chaos testing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot (epochs, checkpoints, faults) to this file")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-train")

	// Per-epoch spans and train/checkpoint counters land on the
	// process-wide registry, snapshotted by -metrics-out at exit.
	branchnet.EnableObs(obs.Default, obs.DefaultTracer)
	writeMetrics := func() {
		if err := obs.WriteMetricsFile(*metricsOut, obs.Default); err != nil {
			slog.Error("writing -metrics-out", "err", err)
		}
	}
	defer writeMetrics()

	injector, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles, err := profiles.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	knobs := knobsFor(*model)

	// SIGTERM/SIGINT request a graceful stop in both modes: in-flight
	// branch trainings persist a final snapshot, then the process exits
	// resumable.
	var stop atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sigc
		slog.Warn("signal received: checkpointing and stopping", "signal", s.String())
		stop.Store(true)
		signal.Stop(sigc) // a second signal kills immediately
	}()

	if *streamTrace != "" {
		code := runStream(streamConfig{
			tracePath: *streamTrace,
			storeDir:  *storeDir,
			pcsSpec:   *streamPCs,
			knobs:     knobs,
			top:       *topBranches,
			epochs:    *epochs,
			examples:  *examples,
			ckDir:     *checkpointDir,
			ckEvery:   *checkpointEvery,
			stop:      &stop,
			faults:    injector,
		})
		writeMetrics()
		if code != 0 {
			os.Exit(code)
		}
		return
	}

	p := bench.ByName(*benchName)
	if p == nil {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	newBase := baselineFor(*baseline)

	start := time.Now()
	var trainTraces []*trace.Trace
	for _, in := range p.Inputs(bench.Train) {
		trainTraces = append(trainTraces, p.Generate(in, *trainLen/len(p.Inputs(bench.Train))))
	}
	validTrace := &trace.Trace{}
	for _, in := range p.Inputs(bench.Validation) {
		part := p.Generate(in, *evalLen/len(p.Inputs(bench.Validation)))
		validTrace.Records = append(validTrace.Records, part.Records...)
	}
	slog.Info("traces generated", "elapsed", time.Since(start).Round(time.Millisecond).String())

	cfg := branchnet.DefaultOfflineConfig(knobs)
	cfg.TopBranches = *topBranches
	cfg.MaxModels = *maxModels
	cfg.Train.Epochs = *epochs
	cfg.Train.MaxExamples = *examples
	cfg.CheckpointDir = *checkpointDir
	cfg.CheckpointEvery = *checkpointEvery
	cfg.Faults = injector

	cfg.Stop = &stop

	start = time.Now()
	models, err := branchnet.TrainOfflineChecked(cfg, trainTraces, validTrace, newBase, nil)
	if errors.Is(err, branchnet.ErrStopped) {
		if *checkpointDir != "" {
			slog.Warn("stopped; state checkpointed — rerun with the same flags to resume",
				"elapsed", time.Since(start).Round(time.Millisecond).String(), "dir", *checkpointDir)
		} else {
			slog.Warn("stopped (no -checkpoint-dir: progress discarded)",
				"elapsed", time.Since(start).Round(time.Millisecond).String())
		}
		writeMetrics()
		os.Exit(3)
	}
	if err != nil {
		log.Fatalf("offline training: %v", err)
	}
	slog.Info("offline training done", "elapsed", time.Since(start).Round(time.Millisecond).String(), "models", len(models))
	for _, m := range models {
		form := "float"
		if m.Engine != nil {
			form = fmt.Sprintf("engine %.0fB", m.Engine.Storage().TotalBytes())
		}
		fmt.Printf("  pc=%#06x validation %.4f -> %.4f (improvement %.0f) [%s]\n",
			m.PC, m.BaseAccuracy, m.ValidAccuracy, m.Improvement, form)
	}
	if len(models) == 0 {
		slog.Info("no branch cleared the improvement threshold (this is the expected outcome for gcc/omnetpp-like profiles)")
		return
	}

	if *out != "" {
		var ems []*engine.Model
		for _, m := range models {
			if m.Engine != nil {
				ems = append(ems, m.Engine)
			}
		}
		if len(ems) == 0 {
			slog.Warn("-out: no quantized models to write (big/tarsa models are float-only)")
		} else {
			if err := engine.WriteModelsFile(*out, ems, injector); err != nil {
				log.Fatalf("writing models: %v", err)
			}
			slog.Info("models written", "models", len(ems), "out", *out)
		}
	}

	// Test-set evaluation per ref input.
	for _, in := range p.Inputs(bench.Test) {
		tr := p.Generate(in, *evalLen)
		baseRes := predictor.Evaluate(newBase(), tr)
		hybRes := predictor.Evaluate(hybrid.New(newBase(), models, ""), tr)
		baseMPKI := baseRes.MPKI(tr)
		hybMPKI := hybRes.MPKI(tr)
		fmt.Printf("test %-12s baseline MPKI %.3f -> hybrid %.3f (%.1f%% reduction)\n",
			in.Name, baseMPKI, hybMPKI, 100*(baseMPKI-hybMPKI)/baseMPKI)
	}
}

// streamConfig carries the -stream-trace mode's inputs.
type streamConfig struct {
	tracePath string
	storeDir  string
	pcsSpec   string
	knobs     branchnet.Knobs
	top       int
	epochs    int
	examples  int
	ckDir     string
	ckEvery   int
	stop      *atomic.Bool
	faults    *faults.Injector
}

// parsePCs splits a comma-separated PC list (hex or decimal).
func parsePCs(spec string) []uint64 {
	var pcs []uint64
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		pc, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			log.Fatalf("-stream-pcs: bad PC %q: %v", f, err)
		}
		pcs = append(pcs, pc)
	}
	return pcs
}

// profileStream streams the trace once, counting every branch's
// executions, and returns the n most-executed PCs with their counts.
func profileStream(path string, n int) ([]uint64, map[uint64]uint64) {
	r, err := trace.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	freq := map[uint64]uint64{}
	var records uint64
	for r.Next() {
		freq[r.Record().PC]++
		records++
	}
	if err := r.Err(); err != nil {
		log.Fatalf("profiling %s: %v", path, err)
	}
	pcs := make([]uint64, 0, len(freq))
	for pc := range freq {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if freq[pcs[i]] != freq[pcs[j]] {
			return freq[pcs[i]] > freq[pcs[j]]
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > n {
		pcs = pcs[:n]
	}
	counts := make(map[uint64]uint64, len(pcs))
	for _, pc := range pcs {
		counts[pc] = freq[pc]
	}
	slog.Info("trace profiled", "records", records, "static_branches", len(freq), "selected", len(pcs))
	return pcs, counts
}

// runStream is the -stream-trace pipeline: extract the trace into a
// sharded example store (or reuse a valid one) and train one model per
// branch straight from the store. Memory stays bounded by the
// extraction block budget and the trainer's prefetch window — never by
// the trace length. Returns the process exit code (3 = stopped but
// resumable, matching the offline pipeline).
func runStream(cfg streamConfig) int {
	window := cfg.knobs.WindowTokens()
	storeDir := cfg.storeDir
	if storeDir == "" {
		storeDir = cfg.tracePath + ".store"
	}

	start := time.Now()
	st, err := branchnet.OpenStore(storeDir)
	if err == nil {
		slog.Info("existing store reused", "dir", storeDir, "branches", len(st.PCs()))
	} else {
		if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("opening store %s: %v (delete the directory to re-extract)", storeDir, err)
		}
		pcs := parsePCs(cfg.pcsSpec)
		var counts map[uint64]uint64
		if len(pcs) == 0 {
			pcs, counts = profileStream(cfg.tracePath, cfg.top)
		}
		st, err = branchnet.ExtractStreamFile(cfg.tracePath, pcs, window, cfg.knobs.PCBits, storeDir,
			branchnet.StoreOpts{MaxPerPC: cfg.examples, Counts: counts})
		if err != nil {
			log.Fatalf("streaming extraction: %v", err)
		}
		slog.Info("trace extracted", "dir", storeDir, "branches", len(st.PCs()),
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}
	defer st.Close()
	if st.Window() != window || st.PCBits() != cfg.knobs.PCBits {
		log.Fatalf("store %s holds window %d / pc bits %d examples; model needs %d / %d (delete the store or match -model)",
			storeDir, st.Window(), st.PCBits(), window, cfg.knobs.PCBits)
	}

	opts := branchnet.DefaultTrainOpts()
	opts.Epochs = cfg.epochs
	opts.MaxExamples = cfg.examples
	if cfg.ckDir != "" {
		if err := os.MkdirAll(cfg.ckDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// Train the requested PCs (all stored branches by default; an
	// explicit -stream-pcs list narrows a reused store to a subset).
	trainPCs := st.PCs()
	if want := parsePCs(cfg.pcsSpec); len(want) > 0 {
		trainPCs = nil
		for _, pc := range want {
			if st.NumExamples(pc) == 0 {
				log.Fatalf("store %s holds no examples for pc %#x (delete the store to re-extract)", storeDir, pc)
			}
			trainPCs = append(trainPCs, pc)
		}
	}

	start = time.Now()
	trained := 0
	for _, pc := range trainPCs {
		sd, err := st.Dataset(pc)
		if err != nil {
			log.Fatal(err)
		}
		o := opts
		if cfg.ckDir != "" {
			o.Checkpoint = &branchnet.TrainCheckpoint{
				Path:         filepath.Join(cfg.ckDir, fmt.Sprintf("stream-%x.ckpt", pc)),
				EveryBatches: cfg.ckEvery,
				Stop:         cfg.stop,
				Faults:       cfg.faults,
			}
		}
		m := branchnet.New(cfg.knobs, pc, opts.Seed)
		loss, err := m.TrainStream(sd, o)
		if errors.Is(err, branchnet.ErrStopped) {
			slog.Warn("stopped; state checkpointed — rerun with the same flags to resume",
				"dir", cfg.ckDir, "elapsed", time.Since(start).Round(time.Millisecond).String())
			return 3
		}
		if err != nil {
			log.Fatalf("training %#x from store: %v", pc, err)
		}
		fmt.Printf("  pc=%#06x examples %d loss %.4f\n", pc, sd.Len(), loss)
		trained++
	}
	slog.Info("streamed training done", "branches", trained,
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	return 0
}
