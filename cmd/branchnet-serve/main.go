// Command branchnet-serve is the BranchNet inference daemon: it loads BNM1
// model files into a versioned registry and serves hybrid (baseline +
// BranchNet) predictions over HTTP with per-client sessions, dynamic
// micro-batching, bounded admission, and hot model reload.
//
// Usage:
//
//	branchnet-serve -models models.bnm [-addr :8080] [-baseline tage64]
//
// Endpoints: POST /v1/predict, POST /v1/reload, GET /healthz, GET /metrics
// (Prometheus text format), GET /debug/spans (recent reload/flush spans as
// JSON), GET /v1/stats. The same /metrics and /debug/spans also mount on
// the -pprof debug listener. SIGHUP re-reads the -models files in place
// (old versions drain before their tables are dropped); SIGINT/SIGTERM
// shut down gracefully, draining in-flight batches. -metrics-out writes a
// final JSON snapshot of the metrics registry on clean shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"branchnet/internal/adapt"
	"branchnet/internal/branchnet"
	"branchnet/internal/obs"
	"branchnet/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-serve: ")

	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripted startups)")
	models := flag.String("models", "", "comma-separated BNM1 model files to load (empty: baseline only)")
	baseline := flag.String("baseline", "tage64", "per-session runtime baseline: "+strings.Join(serve.BaselineNames(), ", "))
	maxBatch := flag.Int("max-batch", 32, "micro-batcher flush size")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "micro-batcher straggler wait")
	inflight := flag.Int("inflight", 512, "admitted-request limit before 429")
	queue := flag.Int("queue", 0, "batch queue length (0 or < inflight: clamped to inflight)")
	maxSessions := flag.Int("max-sessions", 4096, "live-session limit before 429")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle-session eviction age")
	deadline := flag.Duration("deadline", 2*time.Second, "default per-request deadline")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (plus /metrics and /debug/spans) on this address (e.g. localhost:6060; empty: disabled)")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot to this file on clean shutdown")
	drainGrace := flag.Duration("drain-grace", 0, "on SIGTERM, enter the draining state (healthz 503, no new sessions, exports still served) and wait up to this long for a gateway to migrate sessions off before shutting down (0: shut down immediately)")
	adaptOn := flag.Bool("adapt", false, "enable online adaptation: shadow-train Mini models on drifting branches and hot-swap them through the z-gate (see /v1/adapt/status)")
	adaptDir := flag.String("adapt-dir", "adapt-state", "adaptation state directory (reservoir segments, retrain checkpoints, promotion journal)")
	adaptSync := flag.Bool("adapt-sync", false, "run retrains inline in the request that fires them (deterministic; smoke tests only)")
	adaptWorkers := flag.Int("adapt-workers", 1, "background retrain worker pool size")
	adaptSustain := flag.Int("adapt-sustain", 256, "consecutive drifting observations required to fire a retrain")
	adaptMinEx := flag.Int("adapt-min-examples", 512, "sampled examples required before a retrain can fire")
	adaptCooldown := flag.Int("adapt-cooldown", 4096, "per-branch observations between retrain verdicts")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-serve")

	newBase, ok := serve.Baselines[*baseline]
	if !ok {
		log.Fatalf("unknown baseline %q (known: %s)", *baseline, strings.Join(serve.BaselineNames(), ", "))
	}
	var paths []string
	for _, p := range strings.Split(*models, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}

	cfg := serve.Config{
		NewBaseline:     newBase,
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
		QueueLen:        *queue,
		MaxInflight:     *inflight,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		DefaultDeadline: *deadline,
		ModelPaths:      paths,
	}
	// The adapter must exist before the server: it is the Observer the
	// config carries, and its model window floors the session history rings
	// so live samples are wide enough to retrain from.
	var adapter *adapt.Adapter
	if *adaptOn {
		var err error
		adapter, err = adapt.New(adapt.Config{
			Dir:         *adaptDir,
			Sync:        *adaptSync,
			Workers:     *adaptWorkers,
			SustainN:    *adaptSustain,
			MinExamples: *adaptMinEx,
			CooldownObs: *adaptCooldown,
		})
		if err != nil {
			log.Fatalf("adapt: %v", err)
		}
		cfg.Observer = adapter
		cfg.HistoryFloor = adapter.HistoryFloor()
	}
	s := serve.New(cfg)
	// Model inference counters and training spans land in the server's
	// own registry/tracer so /metrics covers the full serving path.
	branchnet.EnableObs(s.Obs(), s.Tracer())
	if adapter != nil {
		if err := adapter.Attach(s); err != nil {
			log.Fatalf("adapt: %v", err)
		}
		slog.Info("online adaptation enabled", "dir", *adaptDir, "sync", *adaptSync, "workers", *adaptWorkers)
	}
	if len(paths) > 0 {
		set, err := s.Reload(paths)
		if err != nil {
			log.Fatalf("loading models: %v", err)
		}
		slog.Info("models loaded", "models", set.Len(), "version", set.Version, "source", set.Source)
	} else {
		slog.Info("no models given; serving baseline predictions only", "baseline", *baseline)
	}

	// The profiling endpoints live on their own mux and listener so they
	// are never reachable through the prediction port. The observability
	// read paths mount there too, for scrapes that must not share the
	// prediction listener.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", s.MetricsHandler())
		mux.Handle("/debug/spans", s.Tracer().Handler())
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		slog.Info("pprof listening", "url", "http://"+pln.Addr().String()+"/debug/pprof/")
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				slog.Warn("pprof serve stopped", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}
	slog.Info("serving", "url", "http://"+ln.Addr().String())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	writeMetrics := func() {
		if err := obs.WriteMetricsFile(*metricsOut, s.Obs()); err != nil {
			slog.Error("writing -metrics-out", "err", err)
		}
	}

	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, os.Interrupt, syscall.SIGTERM)

	for {
		select {
		case <-reload:
			if len(paths) == 0 {
				slog.Warn("SIGHUP ignored: no -models configured")
				continue
			}
			set, err := s.Reload(nil)
			if err != nil {
				slog.Error("reload failed, keeping current models", "err", err)
				continue
			}
			slog.Info("models reloaded", "models", set.Len(), "version", set.Version)
		case sig := <-quit:
			if *drainGrace > 0 && sig == syscall.SIGTERM {
				// Readiness flips first: /healthz answers 503 "draining" and
				// new sessions are refused strictly before any connection is
				// shut down, which is the gateway's window to migrate the
				// sessions this replica still owns.
				s.BeginDrain()
				slog.Info("draining", "sessions", s.SessionCount(), "grace", drainGrace.String())
				drainDeadline := time.Now().Add(*drainGrace)
				for s.SessionCount() > 0 && time.Now().Before(drainDeadline) {
					time.Sleep(20 * time.Millisecond)
				}
				slog.Info("drain window over", "sessions_remaining", s.SessionCount())
			}
			slog.Info("shutting down", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				slog.Warn("http shutdown", "err", err)
			}
			cancel()
			s.Drain()
			if adapter != nil {
				// In-flight retrains checkpoint and stop; reservoirs persist.
				// The next process resumes them bit-identically.
				adapter.Close()
			}
			writeMetrics()
			slog.Info("drained; bye")
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: %v", err)
			}
			if adapter != nil {
				adapter.Close()
			}
			writeMetrics()
			return
		}
	}
}
