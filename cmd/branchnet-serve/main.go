// Command branchnet-serve is the BranchNet inference daemon: it loads BNM1
// model files into a versioned registry and serves hybrid (baseline +
// BranchNet) predictions over HTTP with per-client sessions, dynamic
// micro-batching, bounded admission, and hot model reload.
//
// Usage:
//
//	branchnet-serve -models models.bnm [-addr :8080] [-baseline tage64]
//
// Endpoints: POST /v1/predict, POST /v1/reload, GET /healthz, GET /metrics,
// GET /v1/stats. SIGHUP re-reads the -models files in place (old versions
// drain before their tables are dropped); SIGINT/SIGTERM shut down
// gracefully, draining in-flight batches.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"branchnet/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-serve: ")

	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripted startups)")
	models := flag.String("models", "", "comma-separated BNM1 model files to load (empty: baseline only)")
	baseline := flag.String("baseline", "tage64", "per-session runtime baseline: "+strings.Join(serve.BaselineNames(), ", "))
	maxBatch := flag.Int("max-batch", 32, "micro-batcher flush size")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "micro-batcher straggler wait")
	inflight := flag.Int("inflight", 512, "admitted-request limit before 429")
	queue := flag.Int("queue", 0, "batch queue length (0 or < inflight: clamped to inflight)")
	maxSessions := flag.Int("max-sessions", 4096, "live-session limit before 429")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle-session eviction age")
	deadline := flag.Duration("deadline", 2*time.Second, "default per-request deadline")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty: disabled)")
	flag.Parse()

	newBase, ok := serve.Baselines[*baseline]
	if !ok {
		log.Fatalf("unknown baseline %q (known: %s)", *baseline, strings.Join(serve.BaselineNames(), ", "))
	}
	var paths []string
	for _, p := range strings.Split(*models, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}

	s := serve.New(serve.Config{
		NewBaseline:     newBase,
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
		QueueLen:        *queue,
		MaxInflight:     *inflight,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		DefaultDeadline: *deadline,
		ModelPaths:      paths,
	})
	if len(paths) > 0 {
		set, err := s.Registry().LoadFiles(paths)
		if err != nil {
			log.Fatalf("loading models: %v", err)
		}
		log.Printf("loaded %d models (version %d) from %s", set.Len(), set.Version, set.Source)
	} else {
		log.Printf("no models given; serving %s baseline predictions only", *baseline)
	}

	// The profiling endpoints live on their own mux and listener so they
	// are never reachable through the prediction port.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}
	log.Printf("serving on http://%s", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	reload := make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, os.Interrupt, syscall.SIGTERM)

	for {
		select {
		case <-reload:
			if len(paths) == 0 {
				log.Printf("SIGHUP ignored: no -models configured")
				continue
			}
			set, err := s.Registry().LoadFiles(paths)
			if err != nil {
				log.Printf("reload failed, keeping current models: %v", err)
				continue
			}
			log.Printf("reloaded %d models (version %d)", set.Len(), set.Version)
		case sig := <-quit:
			log.Printf("%s: shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("http shutdown: %v", err)
			}
			cancel()
			s.Drain()
			log.Printf("drained; bye")
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("serve: %v", err)
			}
			return
		}
	}
}
