// Command branchnet-sim replays a branch trace through a predictor and
// reports MPKI, accuracy, and the top mispredicting branches; with -ipc it
// also runs the two-tier pipeline model.
//
// Usage:
//
//	branchnet-sim -trace leela-test.bnt -predictor tage64
//	branchnet-sim -trace leela-test.bnt -predictor mtage -top 10 -ipc
//
// Predictors: tage64, tage56, mtage, mtage-nolocal, gtage, gshare,
// perceptron, static.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/gshare"
	"branchnet/internal/hybrid"
	"branchnet/internal/obs"
	"branchnet/internal/perceptron"
	"branchnet/internal/pipeline"
	"branchnet/internal/predictor"
	"branchnet/internal/tage"
	"branchnet/internal/trace"
)

func newPredictor(name string, tr *trace.Trace) predictor.Predictor {
	switch name {
	case "tage64":
		return tage.New(tage.TAGESCL64KB(), 1)
	case "tage56":
		return tage.New(tage.TAGESCL56KB(), 1)
	case "mtage":
		return tage.New(tage.MTAGESC(), 1)
	case "mtage-nolocal":
		return tage.New(tage.MTAGESCNoLocal(), 1)
	case "gtage":
		return tage.New(tage.GTAGE(), 1)
	case "gshare":
		return gshare.Default4KB()
	case "perceptron":
		return perceptron.New(perceptron.DefaultConfig())
	case "static":
		return predictor.NewStaticBias(tr)
	default:
		log.Fatalf("unknown predictor %q", name)
		return nil
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-sim: ")

	tracePath := flag.String("trace", "", "trace file (BNT1, from tracegen)")
	predName := flag.String("predictor", "tage64", "predictor to evaluate")
	top := flag.Int("top", 5, "print the top-N mispredicting branches")
	ipc := flag.Bool("ipc", false, "also run the two-tier pipeline IPC model")
	modelsPath := flag.String("models", "", "attach quantized BranchNet models (.bnm from branchnet-train) as a hybrid")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot to this file")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-sim")
	branchnet.EnableObs(obs.Default, obs.DefaultTracer)

	if *tracePath == "" {
		log.Fatal("-trace is required (generate one with tracegen)")
	}
	tr, err := trace.ReadFile(*tracePath)
	if err != nil {
		log.Fatalf("reading trace: %v", err)
	}

	p := newPredictor(*predName, tr)
	if *modelsPath != "" {
		f, err := os.Open(*modelsPath)
		if err != nil {
			log.Fatalf("opening models: %v", err)
		}
		ems, err := engine.ReadModels(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading models: %v", err)
		}
		p = hybrid.New(p, branchnet.FromEngine(ems), fmt.Sprintf("hybrid(%s+%d models)", *predName, len(ems)))
		slog.Info("models attached", "models", len(ems), "path", *modelsPath)
	}
	res := predictor.Evaluate(p, tr)
	fmt.Printf("predictor:    %s (%.1f KB)\n", p.Name(), float64(p.Bits())/8192)
	fmt.Printf("branches:     %d dynamic, %d static\n", res.Branches, len(res.ExecPerBranch))
	fmt.Printf("instructions: %d\n", tr.Instructions())
	fmt.Printf("accuracy:     %.4f\n", res.Accuracy())
	fmt.Printf("MPKI:         %.3f\n", res.MPKI(tr))

	if *top > 0 {
		prof := trace.NewProfile(tr)
		for pc, m := range res.PerBranch {
			prof.Branches[pc].Mispredicts = float64(m)
		}
		fmt.Printf("top %d mispredicting branches:\n", *top)
		for _, bs := range prof.TopByMispredicts(*top) {
			fmt.Printf("  pc=%#06x execs=%-8d mispredicts=%-8.0f accuracy=%.4f bias=%.3f\n",
				bs.PC, bs.Count, bs.Mispredicts,
				1-bs.Mispredicts/float64(bs.Count), bs.Bias())
		}
	}

	if *ipc {
		r := pipeline.Simulate(pipeline.DefaultConfig(),
			gshare.Default4KB(), newPredictor(*predName, tr), tr)
		fmt.Printf("pipeline:     IPC %.3f (%d redirects, %d flushes)\n",
			r.IPC(), r.Redirects, r.Mispredicts)
	}

	if err := obs.WriteMetricsFile(*metricsOut, obs.Default); err != nil {
		slog.Error("writing -metrics-out", "err", err)
	}
}
