// Command branchnet-loadgen replays synthetic benchmark traces against a
// running branchnet-serve daemon and reports throughput, latency, and —
// its real purpose — prediction parity: every served prediction is checked
// bit-for-bit against an in-process hybrid evaluation of the same trace,
// baseline, and models.
//
// Usage:
//
//	branchnet-loadgen -addr 127.0.0.1:8080 -bench mcf -branches 20000 \
//	    -models models.bnm -sessions 8 -json BENCH_serve.json
//
// With -write-synth the tool instead profiles the trace, builds -synth
// deterministic synthetic models for its hottest branches, writes them as
// a BNM1 file, and exits — the file a smoke test then hands to both the
// server (-models) and a second loadgen run (-models, for the parity
// reference).
//
// Exit status is non-zero on any parity mismatch, client error, or a run
// that produced no predictions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"syscall"

	"branchnet/internal/bench"
	"branchnet/internal/branchnet"
	"branchnet/internal/engine"
	"branchnet/internal/experiments"
	"branchnet/internal/obs"
	"branchnet/internal/predictor"
	"branchnet/internal/serve"
	"branchnet/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("branchnet-loadgen: ")

	addr := flag.String("addr", "127.0.0.1:8080", "server address")
	addrFile := flag.String("addr-file", "", "read the server address from this file (written by branchnet-serve -addr-file)")
	wait := flag.Duration("wait", 5*time.Second, "how long to wait for the server to become ready")
	benchName := flag.String("bench", "mcf", "benchmark program to replay")
	split := flag.String("split", "test", "input split: train, validation, or test")
	branches := flag.Int("branches", 20000, "trace length in branch records")
	models := flag.String("models", "", "comma-separated BNM1 files for the parity reference (must match the server's)")
	baseline := flag.String("baseline", "tage64", "baseline preset (must match the server's): "+strings.Join(serve.BaselineNames(), ", "))
	sessions := flag.Int("sessions", 4, "concurrent client sessions")
	chunk := flag.Int("chunk", 64, "records per request")
	qps := flag.Float64("qps", 0, "target total request rate (0 = unpaced)")
	duration := flag.Duration("duration", 0, "run length (0 = one trace pass per session)")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request deadline forwarded to the server (0 = server default)")
	jsonOut := flag.String("json", "", "write the load report as JSON to this file")
	synth := flag.Int("synth", 0, "with -write-synth: number of synthetic models to build")
	writeSynth := flag.String("write-synth", "", "profile the trace, write synthetic models as BNM1 to this file, and exit")
	noParity := flag.Bool("no-parity", false, "skip the parity check (throughput measurement only)")
	metricsOut := flag.String("metrics-out", "", "write a final JSON metrics snapshot of the client-side counters and latency histogram to this file")
	cluster := flag.Bool("cluster", false, "cluster mode: drive a branchnet-gateway fleet with Zipf-skewed workload popularity (requires -duration; -addr points at the gateway)")
	phaseShift := flag.Bool("phase-shift", false, "adaptation mode: replay the noisy-history microbenchmark, invert its history correlation mid-run, and require the server's online adapter to retrain through the shift (requires branchnet-serve -adapt; -branches sets the per-phase trace length)")
	adaptPasses := flag.Int("adapt-passes", 8, "phase-shift mode: max trace replays per phase while waiting for a promotion")
	adaptSettle := flag.Duration("adapt-settle", 5*time.Second, "phase-shift mode: post-pass wait for an asynchronous retrain to land")
	workloads := flag.Int("workloads", 4, "cluster mode: trace segments used as distinct workloads")
	zipfS := flag.Float64("zipf", 1.2, "cluster mode: Zipf skew exponent for workload popularity")
	killAfter := flag.Duration("kill-after", 0, "cluster mode: SIGTERM the -kill-pid replica this long into the run (0: no kill)")
	killPID := flag.Int("kill-pid", 0, "cluster mode: replica process id to SIGTERM at -kill-after")
	expectMigrated := flag.Bool("expect-migrated", false, "cluster mode: fail unless the gateway reports sessions_migrated > 0")
	traceSample := flag.Int("trace-sample", 0, "mint a distributed trace (Branchnet-Trace header) on every Nth request per session (0: off)")
	expectTrace := flag.Bool("expect-trace", false, "cluster mode: fail unless /v1/fleet/stats merges every replica and a sampled trace assembles gateway+replica+flush spans (requires -trace-sample)")
	mergeBench := flag.String("merge-bench", "", "cluster/phase-shift mode: merge the result into this BENCH_serve.json file")
	logf := obs.NewLogFlags()
	flag.Parse()
	logf.Setup("branchnet-loadgen")

	var tr *trace.Trace
	if !*phaseShift {
		p := bench.ByName(*benchName)
		if p == nil {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		var sp bench.Split
		switch *split {
		case "train":
			sp = bench.Train
		case "validation":
			sp = bench.Validation
		case "test":
			sp = bench.Test
		default:
			log.Fatalf("unknown split %q (train, validation, test)", *split)
		}
		tr = p.Generate(p.Inputs(sp)[0], *branches)
		slog.Info("trace generated", "bench", *benchName, "split", *split, "branches", tr.Branches())
	}

	if *writeSynth != "" {
		if *synth <= 0 {
			log.Fatalf("-write-synth needs -synth > 0")
		}
		ms := serve.SyntheticModels(tr, *synth, 1)
		if err := engine.WriteModelsFile(*writeSynth, ms, nil); err != nil {
			log.Fatalf("writing models: %v", err)
		}
		slog.Info("synthetic models written", "models", len(ms), "out", *writeSynth)
		return
	}

	newBase, ok := serve.Baselines[*baseline]
	if !ok {
		log.Fatalf("unknown baseline %q (known: %s)", *baseline, strings.Join(serve.BaselineNames(), ", "))
	}

	var attached []*branchnet.Attached
	for _, path := range strings.Split(*models, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("opening %s: %v", path, err)
		}
		ms, err := engine.ReadModels(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading %s: %v", path, err)
		}
		attached = append(attached, branchnet.FromEngine(ms)...)
	}

	var expected []bool
	if !*noParity && tr != nil {
		expected = serve.ExpectedPredictions(newBase, attached, tr)
	}

	target := *addr
	if *addrFile != "" {
		// The daemon writes the file after binding; when both start
		// together (the CI smoke test), poll for it within -wait.
		deadline := time.Now().Add(*wait)
		for {
			b, err := os.ReadFile(*addrFile)
			if err == nil && len(strings.TrimSpace(string(b))) > 0 {
				target = strings.TrimSpace(string(b))
				break
			}
			if !time.Now().Before(deadline) {
				log.Fatalf("reading -addr-file: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	baseURL := "http://" + target
	if err := serve.WaitReady(baseURL, *wait); err != nil {
		log.Fatal(err)
	}

	if *phaseShift {
		runPhaseShift(phaseShiftOpts{
			baseURL:    baseURL,
			newBase:    newBase,
			branches:   *branches,
			chunk:      *chunk,
			passes:     *adaptPasses,
			settle:     *adaptSettle,
			jsonOut:    *jsonOut,
			mergeBench: *mergeBench,
		})
		return
	}

	if *cluster {
		runCluster(clusterOpts{
			baseURL:        baseURL,
			trace:          tr,
			newBase:        newBase,
			attached:       attached,
			workloads:      *workloads,
			zipfS:          *zipfS,
			sessions:       *sessions,
			chunk:          *chunk,
			duration:       *duration,
			deadlineMS:     *deadlineMS,
			noParity:       *noParity,
			killAfter:      *killAfter,
			killPID:        *killPID,
			expectMigrated: *expectMigrated,
			traceSample:    *traceSample,
			expectTrace:    *expectTrace,
			jsonOut:        *jsonOut,
			mergeBench:     *mergeBench,
			metricsOut:     *metricsOut,
		})
		return
	}

	rep, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:    baseURL,
		Trace:      tr,
		Expected:   expected,
		Sessions:   *sessions,
		Chunk:      *chunk,
		QPS:        *qps,
		Duration:   *duration,
		DeadlineMS: *deadlineMS,
		TraceEvery: *traceSample,
		Obs:        obs.Default,
	})
	if err != nil {
		log.Fatal(err)
	}
	if werr := obs.WriteMetricsFile(*metricsOut, obs.Default); werr != nil {
		slog.Error("writing -metrics-out", "err", werr)
	}

	slog.Info("load complete",
		"requests", rep.Requests, "predictions", rep.Predictions,
		"model_predictions", rep.ModelPredictions,
		"elapsed", fmt.Sprintf("%.2fs", rep.DurationSeconds),
		"req_per_s", fmt.Sprintf("%.0f", rep.QPS),
		"pred_per_s", fmt.Sprintf("%.0f", rep.PredictionsPerSec))
	slog.Info("latency",
		"mean_ms", fmt.Sprintf("%.3f", rep.LatencyMean*1e3),
		"p50_ms", fmt.Sprintf("%.3f", rep.LatencyP50*1e3),
		"p99_ms", fmt.Sprintf("%.3f", rep.LatencyP99*1e3),
		"retries_429", rep.Retries429, "errors", rep.Errors)
	slog.Info("server stats",
		"batch_size_mean", fmt.Sprintf("%.2f", rep.Server.BatchSizes.Mean),
		"fused_calls", rep.Server.BatchSizes.Count, "rejected", rep.Server.Rejected)
	if expected != nil {
		slog.Info("parity", "mismatches", rep.Mismatches, "predictions", rep.Predictions)
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *jsonOut, err)
		}
		slog.Info("report written", "out", *jsonOut)
	}

	switch {
	case rep.Predictions == 0:
		log.Fatal("FAIL: no predictions served")
	case rep.Mismatches != 0:
		log.Fatalf("FAIL: %d parity mismatches", rep.Mismatches)
	case rep.Errors != 0:
		log.Fatalf("FAIL: %d client errors", rep.Errors)
	}
	slog.Info("OK")
}

type clusterOpts struct {
	baseURL        string
	trace          *trace.Trace
	newBase        func() predictor.Predictor
	attached       []*branchnet.Attached
	workloads      int
	zipfS          float64
	sessions       int
	chunk          int
	duration       time.Duration
	deadlineMS     int64
	noParity       bool
	killAfter      time.Duration
	killPID        int
	expectMigrated bool
	traceSample    int
	expectTrace    bool
	jsonOut        string
	mergeBench     string
	metricsOut     string
}

// runCluster drives a branchnet-gateway fleet: Zipf-skewed workload
// popularity over trace segments, full parity checking through the
// gateway's routing and migration, and an optional mid-run SIGTERM of one
// replica (the failover smoke). Client errors do NOT fail the run —
// a killed replica produces 502s by design and the affected passes are
// abandoned; what must hold is zero parity mismatches on everything that
// WAS served, plus (with -expect-migrated) a nonzero migrated count.
func runCluster(o clusterOpts) {
	if o.duration <= 0 {
		log.Fatal("-cluster requires -duration > 0")
	}
	wls := serve.MakeClusterWorkloads(o.newBase, o.attached, o.trace, o.workloads)
	if o.noParity {
		for i := range wls {
			wls[i].Expected = nil
		}
	}
	var kill func()
	if o.killAfter > 0 {
		if o.killPID <= 0 {
			log.Fatal("-kill-after requires -kill-pid")
		}
		pid := o.killPID
		kill = func() {
			slog.Info("killing replica", "pid", pid)
			if err := syscall.Kill(pid, syscall.SIGTERM); err != nil {
				slog.Error("kill failed", "pid", pid, "err", err)
			}
		}
	}
	if o.expectTrace && o.traceSample <= 0 {
		log.Fatal("-expect-trace requires -trace-sample > 0")
	}
	rep, err := serve.RunClusterLoad(serve.ClusterLoadConfig{
		BaseURL:    o.baseURL,
		Workloads:  wls,
		ZipfS:      o.zipfS,
		Sessions:   o.sessions,
		Chunk:      o.chunk,
		Duration:   o.duration,
		DeadlineMS: o.deadlineMS,
		KillAfter:  o.killAfter,
		Kill:       kill,
		TraceEvery: o.traceSample,
		Obs:        obs.Default,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fleet-plane verification runs right after the load stops: the span
	// rings are frozen, so the gateway's next scrape tick captures the
	// newest sampled traces intact.
	var traceErr error
	if o.expectTrace {
		replicas := countGatewayReplicas(o.baseURL)
		if err := serve.VerifyFleetStats(nil, o.baseURL, replicas, 5*time.Second); err != nil {
			traceErr = err
		} else if err := serve.VerifyFleetTrace(nil, o.baseURL, rep.TraceIDs, 5*time.Second); err != nil {
			traceErr = err
		} else {
			slog.Info("fleet plane verified",
				"replicas", replicas, "sampled_traces", len(rep.TraceIDs))
		}
	}
	if werr := obs.WriteMetricsFile(o.metricsOut, obs.Default); werr != nil {
		slog.Error("writing -metrics-out", "err", werr)
	}

	slog.Info("cluster load complete",
		"requests", rep.Requests, "predictions", rep.Predictions,
		"passes", rep.Passes, "elapsed", fmt.Sprintf("%.2fs", rep.DurationSeconds),
		"req_per_s", fmt.Sprintf("%.0f", rep.QPS),
		"pred_per_s", fmt.Sprintf("%.0f", rep.PredictionsPerSec))
	slog.Info("latency",
		"mean_ms", fmt.Sprintf("%.3f", rep.LatencyMean*1e3),
		"p50_ms", fmt.Sprintf("%.3f", rep.LatencyP50*1e3),
		"p99_ms", fmt.Sprintf("%.3f", rep.LatencyP99*1e3),
		"retries_429", rep.Retries429, "errors", rep.Errors)
	slog.Info("gateway",
		"migrated", rep.SessionsMigrated, "lost", rep.SessionsLost,
		"failovers", rep.Failovers, "rebalances", rep.RingRebalances,
		"upstream_429", rep.Upstream429, "upstream_errors", rep.UpstreamErrors)
	for _, wl := range rep.Workloads {
		slog.Info("workload", "name", wl.Name, "sessions", wl.Sessions,
			"passes", wl.Passes, "predictions", wl.Predictions, "mismatches", wl.Mismatches)
	}
	if !o.noParity {
		slog.Info("parity", "mismatches", rep.Mismatches, "predictions", rep.Predictions)
	}

	if o.jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(o.jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", o.jsonOut, err)
		}
		slog.Info("report written", "out", o.jsonOut)
	}
	if o.mergeBench != "" {
		if err := mergeClusterCase(o.mergeBench, o, rep); err != nil {
			log.Fatalf("merging %s: %v", o.mergeBench, err)
		}
		slog.Info("cluster case merged", "out", o.mergeBench)
	}

	switch {
	case rep.Predictions == 0:
		log.Fatal("FAIL: no predictions served")
	case rep.Mismatches != 0:
		log.Fatalf("FAIL: %d parity mismatches", rep.Mismatches)
	case o.expectMigrated && rep.SessionsMigrated == 0:
		log.Fatal("FAIL: expected migrated sessions, gateway reports none")
	case traceErr != nil:
		log.Fatalf("FAIL: fleet observability: %v", traceErr)
	}
	slog.Info("OK")
}

// countGatewayReplicas reads the fleet size from the gateway's /v1/stats
// so -expect-trace scales its "all replicas merged" assertion without a
// separate flag.
func countGatewayReplicas(baseURL string) int {
	var st struct {
		Replicas []json.RawMessage `json:"replicas"`
	}
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return 1
	}
	defer resp.Body.Close()
	if json.NewDecoder(resp.Body).Decode(&st) != nil || len(st.Replicas) == 0 {
		return 1
	}
	return len(st.Replicas)
}

type phaseShiftOpts struct {
	baseURL    string
	newBase    func() predictor.Predictor
	branches   int
	chunk      int
	passes     int
	settle     time.Duration
	jsonOut    string
	mergeBench string
}

// runPhaseShift drives the online-adaptation demo: phase A replays the
// noisy-history microbenchmark until the server's adapter cold-start
// promotes a model for Branch B, phase B inverts the history correlation
// (same branches, same rates, opposite rule) until drift fires and a
// retrained model passes the z-gate, and a held-out inverted trace then
// scores baseline vs frozen-control vs adapted — the adapted set must
// beat the control on the shifted branch — and closes with a bit-exact
// parity pass against the downloaded final model set.
func runPhaseShift(o phaseShiftOpts) {
	prog := bench.NoisyHistory()
	phaseA := prog.Generate(bench.NoisyInput("adapt-a", 7001, 5, 10, 0.5), o.branches)
	phaseB := prog.Generate(bench.NoisyInvertInput("adapt-b", 7002, 5, 10, 0.5), o.branches)
	eval := prog.Generate(bench.NoisyInvertInput("adapt-eval", 7003, 5, 10, 0.5), o.branches)
	slog.Info("phase-shift traces generated",
		"phase_a", phaseA.Branches(), "phase_b", phaseB.Branches(), "eval", eval.Branches())

	rep, err := serve.RunAdaptLoad(serve.AdaptLoadConfig{
		BaseURL:       o.baseURL,
		NewBaseline:   o.newBase,
		PhaseA:        phaseA,
		PhaseB:        phaseB,
		Eval:          eval,
		HardPC:        bench.NoisyPCB,
		Chunk:         o.chunk,
		MaxPasses:     o.passes,
		SettleTimeout: o.settle,
	})
	if err != nil {
		log.Fatal(err)
	}

	slog.Info("adaptation complete",
		"phase_a_passes", rep.PhaseAPasses, "phase_b_passes", rep.PhaseBPasses,
		"retrains", rep.Retrains, "promotions", rep.Promotions, "blocked", rep.Blocked,
		"final_version", rep.FinalVersion, "models", rep.Models)
	slog.Info("eval accuracy (held-out post-shift trace)",
		"baseline", fmt.Sprintf("%.4f", rep.BaselineAccuracy),
		"control", fmt.Sprintf("%.4f", rep.ControlAccuracy),
		"adapted", fmt.Sprintf("%.4f", rep.AdaptedAccuracy))
	slog.Info("eval accuracy (shifted branch only)",
		"baseline", fmt.Sprintf("%.4f", rep.BaselineHardAccuracy),
		"control", fmt.Sprintf("%.4f", rep.ControlHardAccuracy),
		"adapted", fmt.Sprintf("%.4f", rep.AdaptedHardAccuracy))
	slog.Info("parity", "mismatches", rep.ParityMismatches,
		"predictions", rep.ParityPredictions, "attempts", rep.ParityAttempts)

	if o.jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(o.jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", o.jsonOut, err)
		}
		slog.Info("report written", "out", o.jsonOut)
	}
	if o.mergeBench != "" {
		if err := mergeAdaptCase(o.mergeBench, o, phaseA.Branches(), phaseB.Branches(), eval.Branches(), rep); err != nil {
			log.Fatalf("merging %s: %v", o.mergeBench, err)
		}
		slog.Info("adapt case merged", "out", o.mergeBench)
	}

	switch {
	case rep.ParityPredictions == 0:
		log.Fatal("FAIL: no parity predictions served")
	case rep.ParityMismatches != 0:
		log.Fatalf("FAIL: %d parity mismatches", rep.ParityMismatches)
	case rep.AdaptedHardAccuracy <= rep.ControlHardAccuracy:
		log.Fatalf("FAIL: adapted model (%.4f) does not beat the frozen control (%.4f) on the shifted branch",
			rep.AdaptedHardAccuracy, rep.ControlHardAccuracy)
	}
	slog.Info("OK")
}

// mergeAdaptCase records the phase-shift adaptation result in a
// BENCH_serve.json file alongside the micro-bench cases.
func mergeAdaptCase(path string, o phaseShiftOpts, aRecs, bRecs, eRecs int, rep *serve.AdaptLoadReport) error {
	var bench experiments.ServeBenchReport
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &bench); err != nil {
			return fmt.Errorf("parsing existing report: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	bench.Adapt = &experiments.AdaptCase{
		PhaseARecords:        aRecs,
		PhaseBRecords:        bRecs,
		EvalRecords:          eRecs,
		PhaseAPasses:         rep.PhaseAPasses,
		PhaseBPasses:         rep.PhaseBPasses,
		Retrains:             rep.Retrains,
		Promotions:           rep.Promotions,
		Blocked:              rep.Blocked,
		FinalVersion:         rep.FinalVersion,
		Models:               rep.Models,
		BaselineAccuracy:     rep.BaselineAccuracy,
		ControlAccuracy:      rep.ControlAccuracy,
		AdaptedAccuracy:      rep.AdaptedAccuracy,
		BaselineHardAccuracy: rep.BaselineHardAccuracy,
		ControlHardAccuracy:  rep.ControlHardAccuracy,
		AdaptedHardAccuracy:  rep.AdaptedHardAccuracy,
		ParityPredictions:    rep.ParityPredictions,
		ParityMismatches:     rep.ParityMismatches,
	}
	b, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// mergeClusterCase records the cluster result in a BENCH_serve.json file
// alongside the micro-bench cases.
func mergeClusterCase(path string, o clusterOpts, rep *serve.ClusterLoadReport) error {
	var bench experiments.ServeBenchReport
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &bench); err != nil {
			return fmt.Errorf("parsing existing report: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replicas := 0
	var gw struct {
		Replicas []json.RawMessage `json:"replicas"`
	}
	if json.Unmarshal(rep.Gateway, &gw) == nil {
		replicas = len(gw.Replicas)
	}
	bench.Cluster = &experiments.ClusterCase{
		Replicas:          replicas,
		Sessions:          o.sessions,
		Workloads:         len(rep.Workloads),
		ZipfS:             o.zipfS,
		DurationSeconds:   rep.DurationSeconds,
		Requests:          rep.Requests,
		Predictions:       rep.Predictions,
		PredictionsPerSec: rep.PredictionsPerSec,
		Mismatches:        rep.Mismatches,
		Retries429:        rep.Retries429,
		Errors:            rep.Errors,
		SessionsMigrated:  rep.SessionsMigrated,
		SessionsLost:      rep.SessionsLost,
		Failovers:         rep.Failovers,
		KilledReplica:     o.killAfter > 0,
	}
	b, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
